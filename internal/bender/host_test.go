package bender

import (
	"testing"

	"columndisturb/internal/dram"
	"columndisturb/internal/faultmodel"
)

func testModule(t *testing.T, seed uint64) *dram.Module {
	t.Helper()
	g := dram.SmallGeometry()
	p := faultmodel.Default()
	p.VRTProb = 0
	p.Calibrate(faultmodel.CalibrationTarget{
		TimeToFirstCDms:  5,
		TimeToFirstRETms: 50,
		PopulationCells:  g.TotalCells(),
	})
	d, err := dram.NewDevice(g, &p, dram.DDR4Timing(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return dram.NewModule(d, nil)
}

func TestWriteReadProgram(t *testing.T) {
	h := NewHost(testModule(t, 1))
	prog := Program{Name: "wr", Instrs: []Instr{
		Write{0, 3, dram.PatAA},
		Read{0, 3, "x"},
	}}
	res, err := h.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.ByTag("x")
	if len(recs) != 1 {
		t.Fatalf("want 1 read record, got %d", len(recs))
	}
	want := make([]uint64, h.Module().Geometry().WordsPerRow())
	dram.FillWords(want, dram.PatAA)
	if dram.CountMismatches(recs[0].Data, want) != 0 {
		t.Fatal("read data mismatch")
	}
	if res.ByTag("nope") != nil {
		t.Fatal("unknown tag should return nothing")
	}
}

func TestLoopFastForwardMatchesLiteral(t *testing.T) {
	// The interpreter's analytic fast-forward of the canonical hammer body
	// must produce bit-identical results to literal execution.
	run := func(literal bool) []uint64 {
		h := NewHost(testModule(t, 2))
		g := h.Module().Geometry()
		var init []Instr
		for r := 0; r < g.RowsPerBank(); r++ {
			init = append(init, Write{0, r, dram.PatFF})
		}
		agg := g.SubarrayBase(1) + 7
		init = append(init, Write{0, agg, dram.Pat00})
		if _, err := h.Run(Program{Name: "init", Instrs: init}); err != nil {
			t.Fatal(err)
		}
		const n = 150
		body := []Instr{Act{0, agg}, Wait{70200}, Pre{0}, Wait{14}}
		var hammer Program
		if literal {
			// Unrolled: the matcher must not see a Loop at all.
			var ins []Instr
			for i := 0; i < n; i++ {
				ins = append(ins, body...)
			}
			hammer = Program{Name: "literal", Instrs: ins}
		} else {
			hammer = Program{Name: "fast", Instrs: []Instr{Loop{Count: n, Body: body}}}
		}
		res, err := h.Run(hammer)
		if err != nil {
			t.Fatal(err)
		}
		if res.ActsIssued != n {
			t.Fatalf("acts issued %d, want %d", res.ActsIssued, n)
		}
		read, err := h.Run(ReadRowsProgram(0, 0, g.RowsPerBank()-1, "out"))
		if err != nil {
			t.Fatal(err)
		}
		var all []uint64
		for _, rec := range read.ByTag("out") {
			all = append(all, rec.Data...)
		}
		return all
	}
	fast, lit := run(false), run(true)
	if len(fast) != len(lit) {
		t.Fatal("length mismatch")
	}
	for i := range fast {
		if fast[i] != lit[i] {
			t.Fatalf("fast-forward diverges from literal execution at word %d", i)
		}
	}
}

func TestHammerProgramBuilder(t *testing.T) {
	h := NewHost(testModule(t, 3))
	g := h.Module().Geometry()
	agg := g.SubarrayBase(1) + 4
	res, err := h.Run(HammerProgram(0, agg, 1000, 36, 14))
	if err != nil {
		t.Fatal(err)
	}
	if res.ActsIssued != 1000 {
		t.Fatalf("acts %d", res.ActsIssued)
	}
	wantNs := 1000 * 50.0
	if res.ElapsedNs != wantNs {
		t.Fatalf("elapsed %v, want %v", res.ElapsedNs, wantNs)
	}
}

func TestTwoAggressorProgramBuilder(t *testing.T) {
	h := NewHost(testModule(t, 4))
	g := h.Module().Geometry()
	base := g.SubarrayBase(1)
	res, err := h.Run(TwoAggressorProgram(0, base+3, base+8, 500, 36, 14))
	if err != nil {
		t.Fatal(err)
	}
	if res.ActsIssued != 1000 {
		t.Fatalf("two-aggressor should count both rows' acts: %d", res.ActsIssued)
	}
}

func TestRetentionProgram(t *testing.T) {
	h := NewHost(testModule(t, 5))
	before := h.Module().NowNs()
	if _, err := h.Run(RetentionProgram(64)); err != nil {
		t.Fatal(err)
	}
	if got := h.Module().NowNs() - before; got != 64e6 {
		t.Fatalf("retention wait advanced %v ns, want 64e6", got)
	}
}

func TestRowCloneProgram(t *testing.T) {
	h := NewHost(testModule(t, 6))
	g := h.Module().Geometry()
	src, dst := g.SubarrayBase(1)+2, g.SubarrayBase(1)+9
	if _, err := h.Run(Program{Instrs: []Instr{
		Write{0, src, dram.PatAA}, Write{0, dst, dram.Pat00},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(RowCloneProgram(0, src, dst, h.Module().Timing())); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(Program{Instrs: []Instr{Read{0, dst, "d"}}})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, g.WordsPerRow())
	dram.FillWords(want, dram.PatAA)
	if dram.CountMismatches(res.ByTag("d")[0].Data, want) != 0 {
		t.Fatal("RowClone program did not copy within subarray")
	}
}

func TestLiteralLoopLimit(t *testing.T) {
	h := NewHost(testModule(t, 7))
	h.MaxLiteralIterations = 100
	// A non-canonical body (extra read) cannot be fast-forwarded.
	prog := Program{Instrs: []Instr{
		Loop{Count: 1000, Body: []Instr{
			Act{0, 1}, Wait{36}, Pre{0}, Wait{14}, Read{0, 5, "r"},
		}},
	}}
	if _, err := h.Run(prog); err == nil {
		t.Fatal("oversized literal loop must be rejected")
	}
	// Canonical bodies are exempt.
	if _, err := h.Run(HammerProgram(0, 1, 100000, 36, 14)); err != nil {
		t.Fatalf("fast-forwarded loop should not hit the literal limit: %v", err)
	}
}

func TestSetTempInstruction(t *testing.T) {
	h := NewHost(testModule(t, 8))
	if _, err := h.Run(Program{Instrs: []Instr{SetTemp{45}}}); err != nil {
		t.Fatal(err)
	}
	if h.Module().Temperature() != 45 {
		t.Fatal("SetTemp not applied")
	}
	h.SetTemperature(95)
	if h.Module().Temperature() != 95 {
		t.Fatal("host SetTemperature not applied")
	}
}

func TestProgramErrorsPropagate(t *testing.T) {
	h := NewHost(testModule(t, 9))
	if _, err := h.Run(Program{Name: "bad", Instrs: []Instr{Pre{0}}}); err == nil {
		t.Fatal("PRE on closed bank should error")
	}
	if _, err := h.Run(Program{Instrs: []Instr{Wait{-5}}}); err == nil {
		t.Fatal("negative wait should error")
	}
	if _, err := h.Run(Program{Instrs: []Instr{Act{0, 1 << 30}}}); err == nil {
		t.Fatal("out-of-range row should error")
	}
}

func TestLogicalAddressingThroughHost(t *testing.T) {
	// With a scrambled mapping, hammering logical row L must physically
	// hammer Physical(L): its physical neighbours get the RowHammer
	// damage.
	g := dram.SmallGeometry()
	p := faultmodel.Default()
	p.VRTProb = 0
	p.MuKappa, p.MuBase = -40, -40 // isolate RowHammer
	p.MuHC, p.SigmaHC = 7, 0.5     // threshold ≈ 1100 acts
	d, err := dram.NewDevice(g, &p, dram.DDR4Timing(), 10)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := dram.NewGroupScramble(2, []int{2, 3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(dram.NewModule(d, gs))
	for r := 0; r < g.RowsPerBank(); r++ {
		if err := d.WriteRowPattern(0, r, dram.PatFF); err != nil {
			t.Fatal(err)
		}
	}
	logical := g.SubarrayBase(1) + 4 // physical row = base+6
	phys := gs.Physical(logical)
	if _, err := h.Run(HammerProgram(0, logical, 100000, 36, 14)); err != nil {
		t.Fatal(err)
	}
	ones := make([]uint64, g.WordsPerRow())
	dram.FillWords(ones, dram.PatFF)
	for _, r := range []int{phys - 1, phys + 1} {
		got, err := d.ReadRow(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if dram.CountMismatches(got, ones) == 0 {
			t.Fatalf("physical neighbour %d of hammered row should have flips", r)
		}
	}
}
