package mitigate

import (
	"math"
	"testing"

	"columndisturb/internal/energy"
)

func TestAnalyzePRVRPaperPoint(t *testing.T) {
	res, err := AnalyzePRVR(DefaultPRVRConfig(), energy.DDR5x32Gb())
	if err != nil {
		t.Fatal(err)
	}
	// Victim duty: 3072 rows × 70 ns / 8 ms = 2.69%.
	if math.Abs(res.VictimDuty-0.02688) > 0.0005 {
		t.Fatalf("victim duty %.5f", res.VictimDuty)
	}
	// PRVR must beat the short-period solution decisively: the paper
	// reports 70.5% throughput-loss and 73.8% energy reduction; the
	// analytic model lands in the same regime (≈±10 pp depending on the
	// scheduling assumptions the paper leaves unspecified).
	if res.ThroughputLossReduction < 0.60 || res.ThroughputLossReduction > 0.80 {
		t.Fatalf("throughput loss reduction %.3f outside the paper's regime (0.705)",
			res.ThroughputLossReduction)
	}
	if res.RefreshEnergyReduction < 0.60 || res.RefreshEnergyReduction > 0.85 {
		t.Fatalf("energy reduction %.3f outside the paper's regime (0.738)",
			res.RefreshEnergyReduction)
	}
	// Sanity: PRVR sits between baseline and short-period costs.
	if !(res.PRVRThroughputLoss > res.Baseline.ThroughputLoss &&
		res.PRVRThroughputLoss < res.ShortPeriod.ThroughputLoss) {
		t.Fatalf("PRVR loss %.4f not between baseline %.4f and short %.4f",
			res.PRVRThroughputLoss, res.Baseline.ThroughputLoss, res.ShortPeriod.ThroughputLoss)
	}
}

func TestAnalyzePRVRValidation(t *testing.T) {
	cfg := DefaultPRVRConfig()
	cfg.VictimRows = 0
	if _, err := AnalyzePRVR(cfg, energy.DDR5x32Gb()); err == nil {
		t.Fatal("zero victims accepted")
	}
	cfg = DefaultPRVRConfig()
	cfg.TimeToFirstBitflipMs = 0.1 // victims cannot fit in the budget
	if _, err := AnalyzePRVR(cfg, energy.DDR5x32Gb()); err == nil {
		t.Fatal("impossible victim schedule accepted")
	}
}

func TestPRVRScalesWithSubarraySize(t *testing.T) {
	// Larger subarrays (denser chips) mean more victim rows and higher
	// PRVR cost — the trend §6.1 warns about.
	prev := -1.0
	for _, victims := range []int{1536, 3072, 6144, 12288} {
		cfg := DefaultPRVRConfig()
		cfg.VictimRows = victims
		res, err := AnalyzePRVR(cfg, energy.DDR5x32Gb())
		if err != nil {
			t.Fatal(err)
		}
		if res.PRVRThroughputLoss <= prev {
			t.Fatal("PRVR cost must grow with victim count")
		}
		prev = res.PRVRThroughputLoss
	}
}

func TestNaiveVictimRefreshLatency(t *testing.T) {
	// §6.1: reactively refreshing 3072 rows at 70 ns each ≈ 215 µs.
	got := NaiveVictimRefreshLatencyNs(3072, 70)
	if math.Abs(got-215040) > 1 {
		t.Fatalf("naive latency %v ns, paper: ≈215 µs", got)
	}
}
