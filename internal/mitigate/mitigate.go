// Package mitigate implements and analyzes the paper's two ColumnDisturb
// mitigation techniques (§6.1):
//
//  1. Indiscriminately increasing the DRAM refresh rate — simple but
//     expensive (42.1% throughput loss, 67.5% refresh energy at an 8 ms
//     period on a 32 Gb DDR5 chip).
//  2. PRVR — Proactively Refreshing ColumnDisturb Victim Rows: refresh
//     only the N victim rows of the three perturbed subarrays, spread over
//     the time it takes ColumnDisturb to induce its first bitflip.
//
// The analytic model assumes PRVR victims are refreshed with row-granular
// directed refresh operations (the DDR5 DRFM shape: ≈70 ns per row,
// all banks in parallel when every bank is under attack), layered on top
// of the default 32 ms periodic refresh.
package mitigate

import (
	"fmt"

	"columndisturb/internal/energy"
)

// PRVRConfig describes a PRVR deployment.
type PRVRConfig struct {
	// BasePeriodMs is the regular periodic refresh period (32 ms DDR5).
	BasePeriodMs float64
	// TimeToFirstBitflipMs is how quickly ColumnDisturb can induce the
	// first bitflip under worst-case hammering; all victims must be
	// refreshed once within this budget (the paper evaluates 8 ms).
	TimeToFirstBitflipMs float64
	// VictimRows is the number of rows sharing bitlines with the
	// aggressor: three subarrays' worth (3072 for 1024-row subarrays).
	VictimRows int
	// RowRefreshNs is the per-row directed-refresh cost (tDRFMab for 8
	// rows is 560 ns ⇒ 70 ns per row).
	RowRefreshNs float64
	// TRFCns is the regular all-bank refresh latency.
	TRFCns float64
}

// DefaultPRVRConfig returns the paper's §6.1 evaluation point.
func DefaultPRVRConfig() PRVRConfig {
	return PRVRConfig{
		BasePeriodMs:         32,
		TimeToFirstBitflipMs: 8,
		VictimRows:           3072,
		RowRefreshNs:         70,
		TRFCns:               410,
	}
}

// PRVRResult compares PRVR against the straightforward short-period
// mitigation.
type PRVRResult struct {
	// Baseline is the default refresh period, unprotected.
	Baseline energy.RefreshAnalysis
	// ShortPeriod is the straightforward mitigation: refresh period equal
	// to the time to the first ColumnDisturb bitflip.
	ShortPeriod energy.RefreshAnalysis
	// PRVRThroughputLoss is the fraction of time the chip cannot serve
	// requests under PRVR (periodic refresh + victim refreshes).
	PRVRThroughputLoss float64
	// PRVRRefreshPowerRelative is PRVR's refresh power in idle-chip units.
	PRVRRefreshPowerRelative float64
	// ThroughputLossReduction is how much of the short-period solution's
	// throughput loss PRVR eliminates (the paper reports 70.5%).
	ThroughputLossReduction float64
	// RefreshEnergyReduction is how much of the short-period solution's
	// refresh energy PRVR eliminates (the paper reports 73.8%).
	RefreshEnergyReduction float64
	// VictimDuty is the fraction of time spent on victim refreshes.
	VictimDuty float64
}

// AnalyzePRVR evaluates PRVR against the short-period mitigation under the
// given IDD profile.
func AnalyzePRVR(cfg PRVRConfig, idd energy.IDDProfile) (PRVRResult, error) {
	if cfg.VictimRows <= 0 || cfg.TimeToFirstBitflipMs <= 0 {
		return PRVRResult{}, fmt.Errorf("mitigate: invalid PRVR config %+v", cfg)
	}
	base, err := energy.AnalyzeRefresh(cfg.TRFCns, cfg.BasePeriodMs, idd)
	if err != nil {
		return PRVRResult{}, err
	}
	short, err := energy.AnalyzeRefresh(cfg.TRFCns, cfg.TimeToFirstBitflipMs, idd)
	if err != nil {
		return PRVRResult{}, err
	}
	victimDuty := float64(cfg.VictimRows) * cfg.RowRefreshNs / (cfg.TimeToFirstBitflipMs * 1e6)
	if victimDuty >= 1 {
		return PRVRResult{}, fmt.Errorf("mitigate: victim refresh demand exceeds the bitflip budget")
	}
	// Periodic refresh and victim refresh windows overlap-compose.
	prvrLoss := 1 - (1-base.ThroughputLoss)*(1-victimDuty)
	r := idd.IDD5BmA / idd.IDD2NmA
	prvrPower := (base.ThroughputLoss + victimDuty) * r

	res := PRVRResult{
		Baseline:                 base,
		ShortPeriod:              short,
		PRVRThroughputLoss:       prvrLoss,
		PRVRRefreshPowerRelative: prvrPower,
		VictimDuty:               victimDuty,
	}
	res.ThroughputLossReduction = (short.ThroughputLoss - prvrLoss) / short.ThroughputLoss
	res.RefreshEnergyReduction = (short.RefreshPowerRelative - prvrPower) / short.RefreshPowerRelative
	return res, nil
}

// NaiveVictimRefreshLatencyNs returns the §6.1 back-of-envelope for
// *reactively* refreshing every victim row before an aggressor reaches the
// failure point: rows × per-row refresh cost (the prohibitive ~215 µs for
// 3072 rows the paper cites).
func NaiveVictimRefreshLatencyNs(victimRows int, rowRefreshNs float64) float64 {
	return float64(victimRows) * rowRefreshNs
}
