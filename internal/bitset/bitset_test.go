package bitset

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(128)
	if s.Len() != 0 || s.Contains(0) || s.Contains(127) {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	s.Add(63) // duplicate: Len must not double-count
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, i := range []int{0, 63, 64, 127} {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Contains(1) || s.Contains(128) || s.Contains(1<<20) {
		t.Fatal("phantom member")
	}
}

func TestSetGrowsAndOf(t *testing.T) {
	s := New(0)
	s.Add(1_000_000)
	if !s.Contains(1_000_000) || s.Len() != 1 {
		t.Fatal("growth broken")
	}
	of := Of(3, 5, 3)
	if of.Len() != 2 || !of.Contains(3) || !of.Contains(5) || of.Contains(4) {
		t.Fatal("Of broken")
	}
}

func TestNilSafety(t *testing.T) {
	var s *Set
	if s.Contains(7) || s.Len() != 0 {
		t.Fatal("nil set not empty")
	}
	s.ForEach(func(int) { t.Fatal("nil ForEach visited") })
	if Of().Contains(-1) {
		t.Fatal("negative key contained")
	}
}

func TestForEachAscending(t *testing.T) {
	want := []int{2, 64, 65, 700}
	s := Of(700, 2, 65, 64)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestAgainstMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ref := map[int]bool{}
	s := New(512)
	for i := 0; i < 2000; i++ {
		k := r.Intn(4096)
		ref[k] = true
		s.Add(k)
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}
	for k := 0; k < 4096; k++ {
		if s.Contains(k) != ref[k] {
			t.Fatalf("Contains(%d) = %v, ref %v", k, s.Contains(k), ref[k])
		}
	}
}

func BenchmarkContains(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 37 {
		s.Add(i)
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if s.Contains(i & (1<<20 - 1)) {
			hits++
		}
	}
	_ = hits
}
