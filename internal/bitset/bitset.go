// Package bitset provides a dense bit set over small non-negative integer
// keys. The characterization pipeline's hot loops test row/cell membership
// once per read-back bit (guard-band rows, profiled retention-weak cells);
// a dense bitset answers those probes with one shift-and-mask instead of a
// map lookup's hashing and pointer chasing, and a bank-sized cell set
// (≈1M bits) costs ~128 KiB instead of a multi-megabyte map.
package bitset

import "math/bits"

// Set is a dense bit set. The zero value and the nil pointer are both
// empty, usable sets (membership tests only; Add requires a non-nil Set).
type Set struct {
	words []uint64
	n     int
}

// New returns a set pre-sized for keys in [0, capacity).
func New(capacity int) *Set {
	if capacity < 0 {
		capacity = 0
	}
	return &Set{words: make([]uint64, (capacity+63)/64)}
}

// Of builds a set holding the given members.
func Of(members ...int) *Set {
	s := New(0)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Add inserts i, growing the set as needed. Negative keys panic.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative key")
	}
	w := i >> 6
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	mask := uint64(1) << uint(i&63)
	if s.words[w]&mask == 0 {
		s.words[w] |= mask
		s.n++
	}
}

// Contains reports membership. Nil-safe and out-of-range-safe, so filter
// structs can leave unused sets nil exactly like the maps they replaced.
func (s *Set) Contains(i int) bool {
	if s == nil || i < 0 {
		return false
	}
	w := i >> 6
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(uint64(1)<<uint(i&63)) != 0
}

// Len returns the number of members. Nil-safe.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// ForEach calls fn for every member in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	if s == nil {
		return
	}
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			fn(w<<6 | b)
		}
	}
}
