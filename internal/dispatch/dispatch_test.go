package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"columndisturb/internal/engine"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// localShard computes in-process only (no Remote attachment).
func localShard(label string, v any) engine.Shard {
	return engine.Shard{
		Label: label,
		Run:   func(context.Context) (any, error) { return v, nil },
	}
}

// remoteShard is eligible for both placements: local Run and worker
// replies produce the same deterministic value, mirroring the service's
// contract. Accept tags nothing so placement is invisible in the output.
func remoteShard(label string, v string) engine.Shard {
	return engine.Shard{
		Label: label,
		Run:   func(context.Context) (any, error) { return v, nil },
		Remote: &engine.RemoteSpec{
			Spec:   []byte(label),
			Accept: func(from string, elapsed time.Duration, reply []byte) (any, error) { return string(reply), nil },
		},
	}
}

func TestDispatcherLocalExecutionOrderedResults(t *testing.T) {
	d := New(Options{LocalWorkers: 3, LeaseTTL: time.Second})
	defer d.Close()
	var shards []engine.Shard
	for i := 0; i < 16; i++ {
		shards = append(shards, localShard(fmt.Sprintf("s%d", i), i*i))
	}
	out, err := d.Run(context.Background(), shards, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i*i {
			t.Fatalf("out[%d] = %v, want %d (ordered collection broken)", i, v, i*i)
		}
	}
}

func TestDispatcherShardErrorSemantics(t *testing.T) {
	d := New(Options{LocalWorkers: 2, LeaseTTL: time.Second})
	defer d.Close()
	boom := errors.New("boom")
	shards := []engine.Shard{
		localShard("ok0", "a"),
		{Label: "bad", Run: func(context.Context) (any, error) { return nil, boom }},
		{Label: "panicky", Run: func(context.Context) (any, error) { panic("kaboom") }},
		localShard("ok1", "b"),
	}
	out, err := d.Run(context.Background(), shards, engine.Options{})
	if err == nil {
		t.Fatal("want joined error")
	}
	var se *engine.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not wrap *engine.ShardError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not preserve the shard's cause", err)
	}
	if !strings.Contains(err.Error(), "panic: kaboom") {
		t.Fatalf("panic not isolated into the shard error: %v", err)
	}
	if out[0].(string) != "a" || out[3].(string) != "b" {
		t.Fatalf("healthy shards lost their results: %v", out)
	}
}

func TestDispatcherProgressMonotonic(t *testing.T) {
	d := New(Options{LocalWorkers: 4, LeaseTTL: time.Second})
	defer d.Close()
	var mu sync.Mutex
	last := 0
	opts := engine.Options{OnProgress: func(done, total int, label string) {
		mu.Lock()
		defer mu.Unlock()
		if done != last+1 || total != 12 {
			t.Errorf("progress (%d,%d) after %d", done, total, last)
		}
		last = done
	}}
	var shards []engine.Shard
	for i := 0; i < 12; i++ {
		shards = append(shards, localShard(fmt.Sprintf("s%d", i), i))
	}
	if _, err := d.Run(context.Background(), shards, opts); err != nil {
		t.Fatal(err)
	}
	if last != 12 {
		t.Fatalf("OnProgress reported %d completions, want 12", last)
	}
}

// TestDispatcherRemoteLeaseComplete drives the worker protocol by hand:
// with no local executors, every shard must flow through lease/complete,
// and results land in canonical order regardless of completion order.
func TestDispatcherRemoteLeaseComplete(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	reg, err := d.Register("tester", 8)
	if err != nil {
		t.Fatal(err)
	}
	shards := []engine.Shard{remoteShard("a", "ra"), remoteShard("b", "rb"), remoteShard("c", "rc")}
	type res struct {
		out []any
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := d.Run(context.Background(), shards, engine.Options{})
		done <- res{out, err}
	}()
	// Lease all three, then complete them in reverse order.
	var grants []*LeaseGrant
	for len(grants) < 3 {
		g, err := d.Lease(context.Background(), reg.WorkerID, 200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			grants = append(grants, g)
		}
	}
	for i := len(grants) - 1; i >= 0; i-- {
		spec := string(grants[i].Spec) // the shard label, per remoteShard
		if err := d.Complete(reg.WorkerID, grants[i].TaskID, []byte("r"+spec), ""); err != nil {
			t.Fatal(err)
		}
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	want := []string{"ra", "rb", "rc"}
	for i, v := range r.out {
		if v.(string) != want[i] {
			t.Fatalf("out[%d] = %v, want %s", i, v, want[i])
		}
	}
	ws := d.RemoteWorkers()
	if len(ws) != 1 || ws[0].Completed != 3 || ws[0].Inflight != 0 {
		t.Fatalf("worker snapshot %+v, want 3 completed 0 inflight", ws)
	}
}

// TestDispatcherWorkerErrorFailsShard: a genuine shard error reported by a
// worker fails that shard (and the run), not the dispatcher.
func TestDispatcherWorkerErrorFailsShard(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	reg, _ := d.Register("tester", 1)
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(context.Background(), []engine.Shard{remoteShard("x", "vx")}, engine.Options{})
		done <- err
	}()
	var g *LeaseGrant
	waitFor(t, 2*time.Second, func() bool {
		var err error
		g, err = d.Lease(context.Background(), reg.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g != nil
	}, "lease grant")
	if err := d.Complete(reg.WorkerID, g.TaskID, nil, "device exploded"); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "device exploded") {
		t.Fatalf("run error %v, want the worker-reported shard failure", err)
	}
}

// TestDispatcherLeaseExpiryRequeues is the kill-a-worker-mid-shard path:
// a worker leases a task and goes silent; after the TTL the janitor drops
// it and requeues the task, a healthy worker completes it, and the lost
// worker's late completion is rejected with ErrNoLease.
func TestDispatcherLeaseExpiryRequeues(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: 60 * time.Millisecond})
	defer d.Close()
	dead, _ := d.Register("dead", 1)
	done := make(chan error, 1)
	go func() {
		out, err := d.Run(context.Background(), []engine.Shard{remoteShard("x", "vx")}, engine.Options{})
		if err == nil && out[0].(string) != "vx" {
			err = fmt.Errorf("wrong result %v", out[0])
		}
		done <- err
	}()
	var g *LeaseGrant
	waitFor(t, 2*time.Second, func() bool {
		var err error
		g, err = d.Lease(context.Background(), dead.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g != nil
	}, "first lease")
	// The dead worker never heartbeats again; it must be dropped from the
	// lease table (the never-heartbeats satellite case) and its task
	// requeued to a healthy worker.
	waitFor(t, 2*time.Second, func() bool { return len(d.RemoteWorkers()) == 0 }, "silent worker dropped")

	alive, _ := d.Register("alive", 1)
	var g2 *LeaseGrant
	waitFor(t, 2*time.Second, func() bool {
		var err error
		g2, err = d.Lease(context.Background(), alive.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g2 != nil
	}, "requeued lease")
	if string(g2.Spec) != string(g.Spec) {
		t.Fatalf("requeued task spec %q, want %q", g2.Spec, g.Spec)
	}
	if err := d.Complete(alive.WorkerID, g2.TaskID, []byte("vx"), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The presumed-dead worker finally answers: its identity is gone.
	if err := d.Complete(dead.WorkerID, g.TaskID, []byte("stale"), ""); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("late completion error %v, want ErrUnknownWorker", err)
	}
}

// TestDispatcherDeregisterRequeues: a graceful shutdown returns leases
// immediately instead of waiting out the TTL.
func TestDispatcherDeregisterRequeues(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Minute})
	defer d.Close()
	w1, _ := d.Register("w1", 1)
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(context.Background(), []engine.Shard{remoteShard("x", "vx")}, engine.Options{})
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool {
		g, err := d.Lease(context.Background(), w1.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g != nil
	}, "lease")
	if err := d.Deregister(w1.WorkerID); err != nil {
		t.Fatal(err)
	}
	w2, _ := d.Register("w2", 1)
	var g *LeaseGrant
	waitFor(t, 2*time.Second, func() bool {
		var err error
		g, err = d.Lease(context.Background(), w2.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g != nil
	}, "requeued lease after deregister")
	if err := d.Complete(w2.WorkerID, g.TaskID, []byte("vx"), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherProbeShortCircuit: a task whose server-side probe (the
// shard cache) already holds the value settles inline and is never
// shipped to a worker.
func TestDispatcherProbeShortCircuit(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	reg, _ := d.Register("tester", 1)
	sh := engine.Shard{
		Label: "cached",
		Run:   func(context.Context) (any, error) { t.Error("local Run must not execute"); return nil, nil },
		Remote: &engine.RemoteSpec{
			Spec:  []byte("cached"),
			Probe: func() (any, bool) { return "hit", true },
			Accept: func(string, time.Duration, []byte) (any, error) {
				t.Error("Accept must not execute for a probe hit")
				return nil, nil
			},
		},
	}
	done := make(chan struct {
		out []any
		err error
	}, 1)
	go func() {
		out, err := d.Run(context.Background(), []engine.Shard{sh}, engine.Options{})
		done <- struct {
			out []any
			err error
		}{out, err}
	}()
	// The poll settles the task through the probe and returns empty.
	g, err := d.Lease(context.Background(), reg.WorkerID, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Fatalf("probe-hit task was leased: %+v", g)
	}
	r := <-done
	if r.err != nil || r.out[0].(string) != "hit" {
		t.Fatalf("probe result %v / %v, want hit", r.out, r.err)
	}
}

// TestDispatcherCancellationUnblocksRun: with no capacity anywhere, a
// cancelled context settles queued tasks promptly and reports ctx.Err(),
// and the dispatcher keeps serving later calls.
func TestDispatcherCancellationUnblocksRun(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx, []engine.Shard{remoteShard("x", "vx")}, engine.Options{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run error %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Run did not unblock")
	}
	// The cancelled task is pruned from the queue eagerly — a pure
	// scheduler with no executors popping must not retain it.
	waitFor(t, 2*time.Second, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.pending.Len() == 0
	}, "queue pruned after cancellation")
	// A healthy worker attaching later must find an empty queue, not the
	// cancelled task.
	reg, _ := d.Register("late", 1)
	g, err := d.Lease(context.Background(), reg.WorkerID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Fatalf("cancelled task leaked to a later worker: %+v", g)
	}
}

// TestDispatcherConcurrentRunsInterleave: many Run calls share the queue
// and each observes only its own results — the shared-pool contract.
func TestDispatcherConcurrentRunsInterleave(t *testing.T) {
	d := New(Options{LocalWorkers: 4, LeaseTTL: time.Second})
	defer d.Close()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			var shards []engine.Shard
			for i := 0; i < 10; i++ {
				shards = append(shards, localShard(fmt.Sprintf("r%d-s%d", r, i), r*100+i))
			}
			out, err := d.Run(context.Background(), shards, engine.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range out {
				if v.(int) != r*100+i {
					t.Errorf("run %d out[%d] = %v", r, i, v)
				}
			}
		}()
	}
	wg.Wait()
}

// costShard is remoteShard with a declared scheduling cost.
func costShard(label string, cost float64) engine.Shard {
	sh := remoteShard(label, "v-"+label)
	sh.Cost = cost
	return sh
}

// TestDispatcherLongLeasePollSurvivesJanitor: a worker parked in lease
// long-polls far longer than the TTL must never be evicted — the
// dispatcher caps each park at TTL/2 and renews liveness on every loop
// re-entry, so even a direct-backend caller (no HTTP layer capping for
// it) keeps proving liveness across janitor ticks.
func TestDispatcherLongLeasePollSurvivesJanitor(t *testing.T) {
	const ttl = 120 * time.Millisecond // janitor ticks every ttl/4 = 30ms
	d := New(Options{NoLocal: true, LeaseTTL: ttl})
	defer d.Close()
	reg, err := d.Register("patient", 1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * ttl)
	for time.Now().Before(deadline) {
		g, err := d.Lease(context.Background(), reg.WorkerID, time.Hour)
		if err != nil {
			t.Fatalf("worker evicted mid-poll: %v", err)
		}
		if g != nil {
			t.Fatalf("unexpected grant on an empty queue: %+v", g)
		}
	}
	if ws := d.RemoteWorkers(); len(ws) != 1 {
		t.Fatalf("worker table %+v, want the polling worker still alive", ws)
	}
}

// TestDispatcherLeaseCtxDoneReportsError: a severed caller context must
// surface as ctx.Err(), never as the (nil, nil) of a healthy empty poll.
func TestDispatcherLeaseCtxDoneReportsError(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Minute})
	defer d.Close()
	reg, _ := d.Register("severed", 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	g, err := d.Lease(ctx, reg.WorkerID, 10*time.Second)
	if g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("lease after severed ctx returned (%+v, %v), want (nil, context.Canceled)", g, err)
	}
}

// TestDispatcherCostOrderedLeasing: the queue hands out the most expensive
// pending shard first regardless of submission position, and FIFO order
// survives among equal costs.
func TestDispatcherCostOrderedLeasing(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	shards := []engine.Shard{
		costShard("small-a", 1),
		costShard("big", 100),
		costShard("small-b", 1),
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(context.Background(), shards, engine.Options{})
		done <- err
	}()
	reg, _ := d.Register("solo", 1)
	var order []string
	for len(order) < 3 {
		g, err := d.Lease(context.Background(), reg.WorkerID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			continue
		}
		order = append(order, string(g.Spec))
		if err := d.Complete(reg.WorkerID, g.TaskID, []byte("v"), ""); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"big", "small-a", "small-b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("lease order %v, want %v (largest first, FIFO among equals)", order, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherBigShardAffinity is the acceptance scenario: a 1-big +
// N-small plan and two unequal workers. Even when the weak worker polls
// first, the big shard must land on the higher-capacity worker — the weak
// worker defers it (affinity) and takes a small shard instead.
func TestDispatcherBigShardAffinity(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	weak, _ := d.Register("weak", 1)
	strong, _ := d.Register("strong", 4)
	shards := []engine.Shard{
		costShard("big", 100),
		costShard("s1", 1), costShard("s2", 1), costShard("s3", 1), costShard("s4", 1),
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(context.Background(), shards, engine.Options{})
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.pending.Len() == len(shards)
	}, "plan enqueued")

	// The weak worker polls first: the big shard sits at the queue head,
	// but a strictly stronger worker has free slots, so the weak worker
	// must be handed a small shard instead.
	gw, err := d.Lease(context.Background(), weak.WorkerID, 100*time.Millisecond)
	if err != nil || gw == nil {
		t.Fatalf("weak lease: %+v, %v", gw, err)
	}
	if string(gw.Spec) == "big" {
		t.Fatal("big shard leased to the weak worker despite a free stronger worker")
	}
	gs, err := d.Lease(context.Background(), strong.WorkerID, 100*time.Millisecond)
	if err != nil || gs == nil {
		t.Fatalf("strong lease: %+v, %v", gs, err)
	}
	if string(gs.Spec) != "big" {
		t.Fatalf("strong worker leased %q, want the big shard", gs.Spec)
	}

	// Drain: complete the two grants, then the rest through the strong
	// worker.
	for _, c := range []struct {
		id string
		g  *LeaseGrant
	}{{weak.WorkerID, gw}, {strong.WorkerID, gs}} {
		if err := d.Complete(c.id, c.g.TaskID, []byte("v"), ""); err != nil {
			t.Fatal(err)
		}
	}
	for remaining := 3; remaining > 0; {
		g, err := d.Lease(context.Background(), strong.WorkerID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			continue
		}
		if err := d.Complete(strong.WorkerID, g.TaskID, []byte("v"), ""); err != nil {
			t.Fatal(err)
		}
		remaining--
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The stats that feed the affinity weighting moved: both workers
	// completed work and report busy time.
	for _, w := range d.RemoteWorkers() {
		if w.Completed == 0 || w.BusyMs < 0 || w.AvgTaskMs < 0 {
			t.Fatalf("worker stats not tracked: %+v", w)
		}
	}
}

// TestDispatcherAffinitySkipBudget: with no small shard to fall back on,
// the weak worker still gets the big shard — affinity may defer, never
// starve.
func TestDispatcherAffinitySkipBudget(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	weak, _ := d.Register("weak", 1)
	d.Register("strong", 4) // stronger and free, but never polls
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(context.Background(), []engine.Shard{costShard("big", 100)}, engine.Options{})
		done <- err
	}()
	var g *LeaseGrant
	waitFor(t, 2*time.Second, func() bool {
		var err error
		g, err = d.Lease(context.Background(), weak.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g != nil
	}, "solitary big shard leased to the only polling worker")
	if string(g.Spec) != "big" {
		t.Fatalf("leased %q, want big", g.Spec)
	}
	if err := d.Complete(weak.WorkerID, g.TaskID, []byte("v"), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherLateErrorAfterCancelNoEvent: an error reply arriving after
// the job was cancelled and settled must drop silently — no progress
// report, no error — exactly like a late success reply.
func TestDispatcherLateErrorAfterCancelNoEvent(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Minute})
	defer d.Close()
	reg, _ := d.Register("tester", 1)
	ctx, cancel := context.WithCancel(context.Background())
	var reports atomic.Int32
	opts := engine.Options{OnProgress: func(done, total int, label string) { reports.Add(1) }}
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx, []engine.Shard{remoteShard("x", "vx")}, opts)
		done <- err
	}()
	var g *LeaseGrant
	waitFor(t, 2*time.Second, func() bool {
		var err error
		g, err = d.Lease(context.Background(), reg.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return g != nil
	}, "lease")
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("run error %v, want context.Canceled", err)
	}
	// The worker finally reports a shard error for the settled task.
	if err := d.Complete(reg.WorkerID, g.TaskID, nil, "exploded late"); err != nil {
		t.Fatalf("late error completion returned %v, want silent nil", err)
	}
	if n := reports.Load(); n != 0 {
		t.Fatalf("late error reply fired %d progress reports, want 0", n)
	}
}

func TestDispatcherUnknownWorkerVerbs(t *testing.T) {
	d := New(Options{NoLocal: true, LeaseTTL: time.Second})
	defer d.Close()
	if err := d.Heartbeat("w999"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat error %v", err)
	}
	if _, err := d.Lease(context.Background(), "w999", 0); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("lease error %v", err)
	}
	if err := d.Complete("w999", "t1", nil, ""); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("complete error %v", err)
	}
	reg, _ := d.Register("w", 1)
	if err := d.Complete(reg.WorkerID, "t-none", nil, ""); !errors.Is(err, ErrNoLease) {
		t.Fatalf("complete without lease error %v, want ErrNoLease", err)
	}
}
