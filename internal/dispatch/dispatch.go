// Package dispatch is the distributed shard-execution backend: an
// engine.Backend that routes every shard either to a local executor
// goroutine or to a remote worker process (`cdlab worker`) leased over the
// /v1 worker HTTP verbs (see wire.go for the protocol).
//
// The scheduling model is one pull-based task queue shared by every
// placement. A Run call enqueues its shards as tasks; local executors and
// remote lease polls both pop from the front, so placement is simply
// whichever capacity frees up first — the queue never commits a shard to a
// lost worker. The queue is cost-ordered, not FIFO: tasks carry the
// shard's Cost hint and the most expensive pending task sits at the front,
// so the shards that dominate a sweep's critical path start earliest
// (costless tasks degrade to exact FIFO). Remote leasing adds a soft
// big-shard→big-worker affinity: a worker may defer a task far costlier
// than the runner-up when a strictly stronger worker (capacity × observed
// completion throughput) has a free slot, bounded by a per-task skip
// budget so nothing starves. Determinism survives distribution because
// placement only decides WHERE and WHEN a shard computes, never WHAT:
// results land in the task's input slot and are collected in canonical
// order, and every shard is a pure function of (experiment, config, shard
// key), so a distributed run's merged report is byte-identical to a serial
// local one.
//
// Failure handling is lease-based. A worker proves liveness by
// heartbeating (and by polling for leases); a worker silent for longer
// than the lease TTL is dropped from the table and every task it held is
// requeued at the front of the queue — a shard lost to a killed worker
// re-executes elsewhere and, being deterministic, produces the identical
// partial result. A task that repeatedly dies remotely is pinned local
// (when local executors exist) so one poisonous worker loop cannot starve
// a job forever. Genuine shard errors reported by a worker fail the job,
// exactly as a local shard error would.
//
// Cancellation mirrors the engine contract: when a Run call's context dies
// its queued tasks settle with ctx.Err(), in-flight local shards finish on
// their executors, and late remote replies for settled tasks are
// discarded. A cancelled Run leaves the dispatcher fully usable for other
// callers.
package dispatch

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"columndisturb/internal/engine"
	"columndisturb/internal/obs"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrClosed reports a dispatcher that has been Closed.
	ErrClosed = errors.New("dispatch: closed")
	// ErrUnknownWorker reports a verb addressed to an unregistered (or
	// expired) worker; the worker should re-register.
	ErrUnknownWorker = errors.New("dispatch: unknown worker")
	// ErrNoLease reports a completion for a task the worker no longer
	// holds (typically requeued after the worker was presumed lost); the
	// worker just moves on.
	ErrNoLease = errors.New("dispatch: no such lease")
)

// Options configures a Dispatcher.
type Options struct {
	// LocalWorkers sizes the local executor set (<= 0 selects
	// runtime.GOMAXPROCS(0)). Set NoLocal to run with none.
	LocalWorkers int
	// NoLocal disables local execution entirely: every shard waits for a
	// remote worker lease. Jobs submitted with no worker attached wait in
	// the queue until one attaches (or their context dies).
	NoLocal bool
	// LeaseTTL is the worker heartbeat deadline (<= 0 selects 15s): a
	// worker silent for longer is dropped and its leases requeue.
	LeaseTTL time.Duration
	// MaxRemoteAttempts bounds how many times a task may be requeued off
	// lost workers before it is pinned to local execution (<= 0 selects 3).
	// The pin only applies when local executors exist.
	MaxRemoteAttempts int
	// Metrics, when non-nil, receives the dispatcher's queue/lease metrics
	// (nil creates a private registry, so recording sites never nil-check).
	// Share one registry with the service to export everything at /v1/metrics.
	Metrics *obs.Registry
	// Logger receives structured scheduling logs (worker lifecycle, lease
	// recovery). Nil discards them.
	Logger *slog.Logger
}

// Dispatcher is the distributed engine.Backend. It must be released with
// Close; all methods are goroutine-safe.
type Dispatcher struct {
	opts  Options
	local int // local executor count
	log   *slog.Logger

	// Observability (side channels only — never consulted for scheduling).
	busyLocal     atomic.Int64 // local executors currently inside a shard
	leaseWait     *obs.Histogram
	leaseComplete *obs.Histogram
	requeues      *obs.Counter
	workerTasks   *obs.CounterVec

	mu        sync.Mutex
	pending   *list.List // *task, cost-ordered; front = next out (see enqueueLocked)
	notify    chan struct{}
	workers   map[string]*workerState
	taskSeq   int
	workerSeq int
	closed    bool

	closeCh   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ engine.Backend = (*Dispatcher)(nil)

type taskState int

const (
	taskPending taskState = iota // in the queue
	taskLocal                    // claimed by a local executor
	taskLeased                   // held by a remote worker
	taskDone                     // settled
)

// maxAffinitySkips bounds how many times the affinity rule may pass over
// a big task in favor of a stronger worker before any worker gets it —
// affinity is an optimization, never a reason to starve.
const maxAffinitySkips = 3

// task is one shard's lifecycle through the queue. doneCh closes exactly
// once, when the task settles.
type task struct {
	id     string
	ctx    context.Context
	shard  engine.Shard
	report func(label string)
	cost   float64 // shard.Cost, immutable scheduling weight

	// boost, skips and enqueuedAt are queue-scheduling state guarded by the
	// dispatcher's mu (not t.mu): boost marks requeued interrupted work,
	// which outranks any cost; skips counts affinity deferrals; enqueuedAt
	// anchors the queue-wait latency metric.
	boost      bool
	skips      int
	enqueuedAt time.Time

	mu             sync.Mutex
	state          taskState
	remoteAttempts int
	localOnly      bool
	result         any
	err            error
	doneCh         chan struct{}
}

// finishLocked settles the task. Caller holds t.mu and has checked the
// state is not already taskDone.
func (t *task) finishLocked(v any, err error) {
	t.state = taskDone
	t.result, t.err = v, err
	close(t.doneCh)
}

// finish settles the task unless it already settled (late duplicate
// results — a presumed-lost worker completing after requeue — are
// discarded; first completion wins). ran selects progress reporting:
// executed shards report, cancellation skips do not (the engine contract).
// The report fires before doneCh closes so every OnProgress callback
// happens-before its Run call returns, matching the engine pool.
func (t *task) finish(v any, err error, ran bool) bool {
	t.mu.Lock()
	if t.state == taskDone {
		t.mu.Unlock()
		return false
	}
	t.state = taskDone
	t.result, t.err = v, err
	t.mu.Unlock()
	if ran && t.report != nil {
		t.report(t.shard.Label)
	}
	close(t.doneCh)
	return true
}

// leaseEntry is one outstanding lease: the task plus its grant time, the
// anchor of the lease→complete wall-time measurement.
type leaseEntry struct {
	t         *task
	grantedAt time.Time
}

type workerState struct {
	id        string
	name      string
	capacity  int
	lastSeen  time.Time
	leases    map[string]*leaseEntry // task ID → lease
	completed int64
	busyNs    int64   // summed lease→complete wall time of completed tasks
	costDone  float64 // summed cost weight of completed tasks (min 1 each)
}

// rate is the worker's observed completion throughput in cost units per
// busy second; 0 until the worker has completed something.
func (w *workerState) rate() float64 {
	if w.busyNs <= 0 || w.costDone <= 0 {
		return 0
	}
	return w.costDone / (float64(w.busyNs) / 1e9)
}

// New starts a dispatcher: LocalWorkers executor goroutines (unless
// NoLocal) plus the lease janitor.
func New(opts Options) *Dispatcher {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.MaxRemoteAttempts <= 0 {
		opts.MaxRemoteAttempts = 3
	}
	local := opts.LocalWorkers
	if local <= 0 {
		local = runtime.GOMAXPROCS(0)
	}
	if opts.NoLocal {
		local = 0
	}
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &Dispatcher{
		opts:    opts,
		local:   local,
		log:     log,
		pending: list.New(),
		notify:  make(chan struct{}),
		workers: make(map[string]*workerState),
		closeCh: make(chan struct{}),
	}
	d.leaseWait = reg.Histogram("cdlab_lease_wait_ms",
		"Queue wait from task enqueue to claim by any placement, in milliseconds.", nil)
	d.leaseComplete = reg.Histogram("cdlab_lease_to_complete_ms",
		"Remote lease grant to completion wall time, in milliseconds.", nil)
	d.requeues = reg.Counter("cdlab_dispatch_requeues_total",
		"Tasks requeued off lost workers.")
	d.workerTasks = reg.CounterVec("cdlab_worker_tasks_total",
		"Tasks completed per remote worker.", "worker")
	reg.GaugeFunc("cdlab_dispatch_queue_depth",
		"Pending tasks in the dispatch queue (settled entries pruned lazily).", func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.pending.Len())
		})
	reg.GaugeFunc("cdlab_dispatch_workers",
		"Remote workers currently registered.", func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(len(d.workers))
		})
	d.wg.Add(local + 1)
	for i := 0; i < local; i++ {
		go d.localLoop()
	}
	go d.janitor()
	return d
}

// Workers implements engine.Backend: the local parallelism bound. Remote
// capacity attaches and detaches at runtime; see RemoteWorkers.
func (d *Dispatcher) Workers() int { return d.local }

// LeaseTTL returns the effective worker heartbeat deadline.
func (d *Dispatcher) LeaseTTL() time.Duration { return d.opts.LeaseTTL }

// Busy reports the dispatcher's in-flight shard count: local executors
// inside a shard plus outstanding remote leases. An instantaneous
// utilization reading for metrics exporters.
func (d *Dispatcher) Busy() int {
	n := int(d.busyLocal.Load())
	d.mu.Lock()
	for _, w := range d.workers {
		n += len(w.leases)
	}
	d.mu.Unlock()
	return n
}

// Close stops the executors and the janitor and waits for them. It must
// not be called concurrently with Run (settle or cancel jobs first — the
// service does exactly that).
func (d *Dispatcher) Close() {
	d.closeOnce.Do(func() {
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		close(d.closeCh)
	})
	d.wg.Wait()
}

// wakeLocked signals every waiter (executors, lease long-polls) that the
// queue changed. Caller holds d.mu.
func (d *Dispatcher) wakeLocked() {
	close(d.notify)
	d.notify = make(chan struct{})
}

// Run implements engine.Backend with the package-level engine semantics:
// results in input order, failures joined via engine.ShardError, and
// cancellation reported as ctx.Err() while other callers keep running.
// Concurrent Run calls interleave their tasks on the same queue.
func (d *Dispatcher) Run(ctx context.Context, shards []engine.Shard, opts engine.Options) ([]any, error) {
	if len(shards) == 0 {
		return nil, ctx.Err()
	}
	report := engine.ProgressReporter(opts, len(shards))
	tasks := make([]*task, len(shards))
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	for i, sh := range shards {
		d.taskSeq++
		tasks[i] = &task{
			id:     fmt.Sprintf("t%d", d.taskSeq),
			ctx:    ctx,
			shard:  sh,
			report: report,
			cost:   sh.Cost,
			doneCh: make(chan struct{}),
		}
		// Crash-recovered work re-enters at the front of the queue, the
		// same boost a requeued lease gets: it already waited once.
		tasks[i].boost = opts.Recovered
		d.enqueueLocked(tasks[i])
	}
	d.wakeLocked()
	d.mu.Unlock()

	// The watcher unblocks this call promptly on cancellation: tasks still
	// queued or leased settle with ctx.Err() (a lost lease's late reply is
	// discarded); tasks running on a local executor finish there.
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			for _, t := range tasks {
				t.mu.Lock()
				if t.state == taskPending || t.state == taskLeased {
					t.finishLocked(nil, ctx.Err())
				}
				t.mu.Unlock()
			}
			// Drop the settled tasks from the queue now rather than waiting
			// for the next pop to prune them lazily: on a pure scheduler
			// with no worker attached nobody may pop for a long time, and a
			// cancelled job's shard closures must not stay referenced until
			// then.
			d.pruneSettled()
		case <-watchDone:
		}
	}()

	out := make([]any, len(tasks))
	errs := make([]error, len(tasks))
	for i, t := range tasks {
		<-t.doneCh
		t.mu.Lock()
		out[i], errs[i] = t.result, t.err
		t.mu.Unlock()
	}
	close(watchDone)
	watch.Wait()
	return out, engine.JoinShardErrors(ctx, shards, errs)
}

// pruneSettled removes every settled task from the queue (cancellation
// cleanup; pops prune lazily, but an idle queue has no pops).
func (d *Dispatcher) pruneSettled() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for el := d.pending.Front(); el != nil; {
		next := el.Next()
		t := el.Value.(*task)
		t.mu.Lock()
		if t.state != taskPending {
			d.pending.Remove(el)
		}
		t.mu.Unlock()
		el = next
	}
}

// moreUrgent orders the pending queue: requeued interrupted work first
// (boost), then largest declared cost. Equal urgency preserves insertion
// order, so an all-zero-cost queue behaves exactly like the old FIFO.
// Caller holds d.mu (boost is d.mu-guarded).
func moreUrgent(a, b *task) bool {
	if a.boost != b.boost {
		return a.boost
	}
	return a.cost > b.cost
}

// enqueueLocked inserts the task in urgency order: in front of the first
// queued task it outranks, at the back among equals. O(queue) per insert,
// which is fine at plan scale and keeps the list structure (and its lazy
// pruning) that every other queue operation relies on. Caller holds d.mu.
func (d *Dispatcher) enqueueLocked(t *task) {
	t.enqueuedAt = time.Now()
	for el := d.pending.Front(); el != nil; el = el.Next() {
		if moreUrgent(t, el.Value.(*task)) {
			d.pending.InsertBefore(t, el)
			return
		}
	}
	d.pending.PushBack(t)
}

// popLocked removes and claims the next runnable task for the given
// placement (w == nil means a local executor), pruning settled and
// cancelled entries as it scans. The queue is cost-ordered, so the first
// eligible task is the most urgent; a remote pop may defer a task far
// costlier than the runner-up to a strictly stronger worker with a free
// slot (the affinity rule), bounded by the task's skip budget. Caller
// holds d.mu; nil means the queue holds nothing for this placement.
func (d *Dispatcher) popLocked(w *workerState) *task {
	remote := w != nil
rescan:
	for {
		// Collect the first two eligible entries (pruning dead ones on the
		// way): the head is the default grant, the runner-up is what the
		// affinity rule would hand out instead.
		var elig []*list.Element
		for el := d.pending.Front(); el != nil && len(elig) < 2; {
			next := el.Next()
			t := el.Value.(*task)
			t.mu.Lock()
			switch {
			case t.state != taskPending:
				// Settled while queued (cancellation watcher); prune lazily.
				d.pending.Remove(el)
			case t.ctx.Err() != nil:
				// Don't start a shard whose job already died.
				d.pending.Remove(el)
				t.finishLocked(nil, t.ctx.Err())
			case remote && (t.localOnly || t.shard.Remote == nil):
				// Not remote-eligible: leave it for a local executor.
			default:
				elig = append(elig, el)
			}
			t.mu.Unlock()
			el = next
		}
		if len(elig) == 0 {
			return nil
		}
		grant := elig[0]
		if remote && len(elig) == 2 {
			head, alt := grant.Value.(*task), elig[1].Value.(*task)
			if head.cost > 0 && head.cost >= 2*alt.cost &&
				head.skips < maxAffinitySkips && d.strongerFreeWorkerLocked(w) {
				head.skips++
				grant = elig[1]
			}
		}
		t := grant.Value.(*task)
		d.pending.Remove(grant)
		t.mu.Lock()
		if t.state != taskPending {
			// Settled between the eligibility scan and the claim (the
			// cancellation watcher holds only t.mu): rescan.
			t.mu.Unlock()
			continue rescan
		}
		if remote {
			t.state = taskLeased
		} else {
			t.state = taskLocal
		}
		t.mu.Unlock()
		d.leaseWait.Observe(float64(time.Since(t.enqueuedAt)) / float64(time.Millisecond))
		return t
	}
}

// strengthLocked scores a worker for the affinity rule: declared capacity
// scaled by observed throughput relative to the fleet mean. A worker with
// no completions yet scores on capacity alone, so affinity works from the
// first grant and measurements only refine it. Caller holds d.mu.
func (d *Dispatcher) strengthLocked(w *workerState) float64 {
	factor := 1.0
	if r := w.rate(); r > 0 {
		var sum float64
		n := 0
		for _, o := range d.workers {
			if or := o.rate(); or > 0 {
				sum += or
				n++
			}
		}
		factor = r * float64(n) / sum
	}
	return float64(w.capacity) * factor
}

// strongerFreeWorkerLocked reports whether any other registered worker
// with a free lease slot is strictly stronger than w. Caller holds d.mu.
func (d *Dispatcher) strongerFreeWorkerLocked(w *workerState) bool {
	ws := d.strengthLocked(w)
	for _, o := range d.workers {
		if o != w && len(o.leases) < o.capacity && d.strengthLocked(o) > ws {
			return true
		}
	}
	return false
}

// requeueLocked pushes a lost worker's leased tasks back into the queue
// with the boost flag set (interrupted work outranks new work, whatever
// its cost), counting the failed attempt and pinning repeat offenders to
// local execution when local executors exist. Caller holds d.mu.
func (d *Dispatcher) requeueLocked(w *workerState) {
	requeued := false
	for _, le := range w.leases {
		t := le.t
		t.mu.Lock()
		if t.state != taskLeased {
			t.mu.Unlock()
			continue
		}
		if err := t.ctx.Err(); err != nil {
			t.finishLocked(nil, err)
			t.mu.Unlock()
			continue
		}
		t.remoteAttempts++
		if t.remoteAttempts >= d.opts.MaxRemoteAttempts && d.local > 0 {
			t.localOnly = true
		}
		t.state = taskPending
		t.mu.Unlock()
		t.shard.Span.Record(obs.SpanRequeued, w.id)
		d.requeues.Inc()
		d.log.Warn("worker lost, requeueing task",
			"worker", w.id, "worker_name", w.name, "task", t.id, "shard", t.shard.Label)
		t.boost = true
		d.enqueueLocked(t)
		requeued = true
	}
	w.leases = map[string]*leaseEntry{}
	if requeued {
		d.wakeLocked()
	}
}

// localLoop is one local executor: it pulls runnable tasks until Close.
func (d *Dispatcher) localLoop() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return
		}
		t := d.popLocked(nil)
		notify := d.notify
		d.mu.Unlock()
		if t == nil {
			select {
			case <-notify:
			case <-d.closeCh:
				return
			}
			continue
		}
		d.busyLocal.Add(1)
		v, err := engine.RunShard(t.ctx, t.shard)
		d.busyLocal.Add(-1)
		t.finish(v, err, true)
	}
}

// janitor periodically drops workers whose heartbeat deadline passed and
// requeues their leases — the deadline-based recovery path for killed or
// partitioned workers.
func (d *Dispatcher) janitor() {
	defer d.wg.Done()
	tick := d.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.closeCh:
			return
		case <-ticker.C:
			d.expire(time.Now())
		}
	}
}

// expire drops every worker silent past the lease TTL and requeues its
// tasks.
func (d *Dispatcher) expire(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, w := range d.workers {
		if now.Sub(w.lastSeen) > d.opts.LeaseTTL {
			delete(d.workers, id)
			d.log.Warn("worker heartbeat deadline passed, evicting",
				"worker", id, "worker_name", w.name,
				"silent_ms", now.Sub(w.lastSeen).Milliseconds(),
				"leases", len(w.leases))
			d.requeueLocked(w)
		}
	}
}

// Register adds a worker to the lease table and returns its identity and
// heartbeat contract.
func (d *Dispatcher) Register(name string, capacity int) (RegisterResponse, error) {
	if capacity <= 0 {
		capacity = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return RegisterResponse{}, ErrClosed
	}
	d.workerSeq++
	id := fmt.Sprintf("w%d", d.workerSeq)
	if name == "" {
		name = id
	}
	d.workers[id] = &workerState{
		id:       id,
		name:     name,
		capacity: capacity,
		lastSeen: time.Now(),
		leases:   make(map[string]*leaseEntry),
	}
	d.log.Info("worker registered", "worker", id, "worker_name", name, "capacity", capacity)
	return RegisterResponse{
		Protocol:   ProtocolVersion,
		WorkerID:   id,
		LeaseTTLMs: d.opts.LeaseTTL.Milliseconds(),
	}, nil
}

// Heartbeat renews a worker's liveness deadline.
func (d *Dispatcher) Heartbeat(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	return nil
}

// Deregister removes a worker immediately (graceful shutdown), requeueing
// any leases it still holds.
func (d *Dispatcher) Deregister(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	delete(d.workers, workerID)
	d.log.Info("worker deregistered", "worker", workerID, "worker_name", w.name, "completed", w.completed)
	d.requeueLocked(w)
	return nil
}

// Lease hands the worker its next task, long-polling up to wait for one to
// appear. A nil grant with nil error means the poll elapsed empty (HTTP
// 204); a dead ctx returns ctx.Err(), so a severed caller is never mistaken
// for a healthy empty poll. Leasing also proves liveness, so a busy worker
// that polls needs no separate heartbeat. Tasks whose server-side Probe
// (the shard cache) already holds the result settle inline and are never
// shipped.
func (d *Dispatcher) Lease(ctx context.Context, workerID string, wait time.Duration) (*LeaseGrant, error) {
	// Cap the poll at half the lease TTL inside the dispatcher itself, not
	// just in the HTTP layer: lastSeen renews only when the loop re-enters,
	// so a caller parked in the select below proves no liveness — no single
	// park may outlast the heartbeat deadline, or a direct-backend caller
	// asking for a generous wait would be evicted mid-poll by the janitor.
	if max := d.opts.LeaseTTL / 2; wait > max {
		wait = max
	}
	deadline := time.Now().Add(wait)
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return nil, ErrClosed
		}
		w := d.workers[workerID]
		if w == nil {
			d.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = time.Now()
		var t *task
		if len(w.leases) < w.capacity {
			t = d.popLocked(w)
		}
		notify := d.notify
		if t != nil {
			if probe := t.shard.Remote.Probe; probe != nil {
				// Probe outside d.mu: it touches the result cache and emits
				// events. The task is claimed (taskLeased), so no other
				// placement can race for it.
				d.mu.Unlock()
				if v, ok := probe(); ok {
					t.finish(v, nil, true)
					continue
				}
				d.mu.Lock()
				if d.workers[workerID] != w {
					// The worker expired (or re-registered) while we probed:
					// put the task back and report the stale identity.
					t.mu.Lock()
					if t.state == taskLeased {
						t.state = taskPending
						t.mu.Unlock()
						d.enqueueLocked(t)
						d.wakeLocked()
					} else {
						t.mu.Unlock()
					}
					d.mu.Unlock()
					return nil, ErrUnknownWorker
				}
			}
			// The task may have settled while unlocked (its job cancelled
			// during the probe): granting it would make a worker compute a
			// whole shard only for Complete to discard the reply.
			t.mu.Lock()
			stillLeased := t.state == taskLeased
			t.mu.Unlock()
			if !stillLeased {
				d.mu.Unlock()
				continue
			}
			w.leases[t.id] = &leaseEntry{t: t, grantedAt: time.Now()}
			d.mu.Unlock()
			t.shard.Span.Record(obs.SpanLeased, workerID)
			d.log.Debug("lease granted", "worker", workerID, "task", t.id, "shard", t.shard.Label)
			return &LeaseGrant{TaskID: t.id, Spec: t.shard.Remote.Spec}, nil
		}
		d.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			// A dead caller context is a severed connection, not an empty
			// poll: surface it so the HTTP layer can drop the response
			// instead of sending a 204 nobody will read.
			timer.Stop()
			return nil, ctx.Err()
		case <-d.closeCh:
			timer.Stop()
			return nil, ErrClosed
		}
	}
}

// Complete settles a leased task with the worker's reply: a reported shard
// error fails the task (and so the job), a successful reply flows through
// the shard's Accept hook (decode, cache fill, events) with the observed
// lease→complete wall time. Late completions — success OR error — for
// tasks already settled elsewhere are discarded silently; a completion for
// a lease this worker no longer holds returns ErrNoLease.
func (d *Dispatcher) Complete(workerID, taskID string, result []byte, workerErr string) error {
	d.mu.Lock()
	w := d.workers[workerID]
	if w == nil {
		d.mu.Unlock()
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	le := w.leases[taskID]
	if le == nil {
		d.mu.Unlock()
		return ErrNoLease
	}
	delete(w.leases, taskID)
	d.mu.Unlock()
	t := le.t
	elapsed := time.Since(le.grantedAt)

	if workerErr != "" {
		// Mirror the success path's settled check: a late error reply for a
		// task the cancel path already settled must drop silently instead
		// of racing it with a report nobody should see.
		t.mu.Lock()
		if t.state == taskDone {
			t.mu.Unlock()
			return nil
		}
		if err := t.ctx.Err(); err != nil {
			// The job died while the worker computed; settle as a
			// cancellation skip (no report), exactly as the watcher would.
			t.finishLocked(nil, err)
			t.mu.Unlock()
			return nil
		}
		t.mu.Unlock()
		d.log.Warn("worker reported shard error",
			"worker", workerID, "task", taskID, "shard", t.shard.Label, "error", workerErr)
		t.finish(nil, fmt.Errorf("dispatch: worker %s: %s", workerID, workerErr), true)
		return nil
	}
	t.mu.Lock()
	settled := t.state == taskDone
	t.mu.Unlock()
	if settled {
		// The task was settled while leased (job cancelled): drop the late
		// reply without Accept side effects.
		return nil
	}
	v, err := t.shard.Remote.Accept(workerID, elapsed, result)
	if err != nil {
		t.finish(nil, fmt.Errorf("dispatch: worker %s reply for %s: %w", workerID, t.shard.Label, err), true)
		return nil
	}
	if t.finish(v, nil, true) {
		d.leaseComplete.Observe(float64(elapsed) / float64(time.Millisecond))
		d.workerTasks.With(w.name).Inc()
		d.log.Debug("task completed",
			"worker", workerID, "task", taskID, "shard", t.shard.Label,
			"elapsed_ms", elapsed.Milliseconds())
		d.mu.Lock()
		if cur := d.workers[workerID]; cur == w {
			w.completed++
			w.busyNs += int64(elapsed)
			weight := t.cost
			if weight < 1 {
				weight = 1
			}
			w.costDone += weight
		}
		d.mu.Unlock()
	}
	return nil
}

// RemoteWorkers snapshots the lease table for listings and tests, sorted
// by worker ID.
func (d *Dispatcher) RemoteWorkers() []WorkerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(d.workers))
	for _, w := range d.workers {
		info := WorkerInfo{
			ID:         w.id,
			Name:       w.name,
			Capacity:   w.capacity,
			Inflight:   len(w.leases),
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
			Completed:  w.completed,
			BusyMs:     w.busyNs / 1e6,
		}
		if w.completed > 0 {
			info.AvgTaskMs = float64(w.busyNs) / 1e6 / float64(w.completed)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
