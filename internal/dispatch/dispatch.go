// Package dispatch is the distributed shard-execution backend: an
// engine.Backend that routes every shard either to a local executor
// goroutine or to a remote worker process (`cdlab worker`) leased over the
// /v1 worker HTTP verbs (see wire.go for the protocol).
//
// The scheduling model is one pull-based task queue shared by every
// placement. A Run call enqueues its shards as tasks; local executors and
// remote lease polls both pop from the front, so placement is simply
// whichever capacity frees up first — the queue never commits a shard to a
// lost worker. Determinism survives distribution because placement only
// decides WHERE a shard computes, never WHAT: results land in the task's
// input slot and are collected in canonical order, and every shard is a
// pure function of (experiment, config, shard key), so a distributed run's
// merged report is byte-identical to a serial local one.
//
// Failure handling is lease-based. A worker proves liveness by
// heartbeating (and by polling for leases); a worker silent for longer
// than the lease TTL is dropped from the table and every task it held is
// requeued at the front of the queue — a shard lost to a killed worker
// re-executes elsewhere and, being deterministic, produces the identical
// partial result. A task that repeatedly dies remotely is pinned local
// (when local executors exist) so one poisonous worker loop cannot starve
// a job forever. Genuine shard errors reported by a worker fail the job,
// exactly as a local shard error would.
//
// Cancellation mirrors the engine contract: when a Run call's context dies
// its queued tasks settle with ctx.Err(), in-flight local shards finish on
// their executors, and late remote replies for settled tasks are
// discarded. A cancelled Run leaves the dispatcher fully usable for other
// callers.
package dispatch

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"columndisturb/internal/engine"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrClosed reports a dispatcher that has been Closed.
	ErrClosed = errors.New("dispatch: closed")
	// ErrUnknownWorker reports a verb addressed to an unregistered (or
	// expired) worker; the worker should re-register.
	ErrUnknownWorker = errors.New("dispatch: unknown worker")
	// ErrNoLease reports a completion for a task the worker no longer
	// holds (typically requeued after the worker was presumed lost); the
	// worker just moves on.
	ErrNoLease = errors.New("dispatch: no such lease")
)

// Options configures a Dispatcher.
type Options struct {
	// LocalWorkers sizes the local executor set (<= 0 selects
	// runtime.GOMAXPROCS(0)). Set NoLocal to run with none.
	LocalWorkers int
	// NoLocal disables local execution entirely: every shard waits for a
	// remote worker lease. Jobs submitted with no worker attached wait in
	// the queue until one attaches (or their context dies).
	NoLocal bool
	// LeaseTTL is the worker heartbeat deadline (<= 0 selects 15s): a
	// worker silent for longer is dropped and its leases requeue.
	LeaseTTL time.Duration
	// MaxRemoteAttempts bounds how many times a task may be requeued off
	// lost workers before it is pinned to local execution (<= 0 selects 3).
	// The pin only applies when local executors exist.
	MaxRemoteAttempts int
}

// Dispatcher is the distributed engine.Backend. It must be released with
// Close; all methods are goroutine-safe.
type Dispatcher struct {
	opts  Options
	local int // local executor count

	mu        sync.Mutex
	pending   *list.List // *task FIFO; front = next out
	notify    chan struct{}
	workers   map[string]*workerState
	taskSeq   int
	workerSeq int
	closed    bool

	closeCh   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ engine.Backend = (*Dispatcher)(nil)

type taskState int

const (
	taskPending taskState = iota // in the queue
	taskLocal                    // claimed by a local executor
	taskLeased                   // held by a remote worker
	taskDone                     // settled
)

// task is one shard's lifecycle through the queue. doneCh closes exactly
// once, when the task settles.
type task struct {
	id     string
	ctx    context.Context
	shard  engine.Shard
	report func(label string)

	mu             sync.Mutex
	state          taskState
	remoteAttempts int
	localOnly      bool
	result         any
	err            error
	doneCh         chan struct{}
}

// finishLocked settles the task. Caller holds t.mu and has checked the
// state is not already taskDone.
func (t *task) finishLocked(v any, err error) {
	t.state = taskDone
	t.result, t.err = v, err
	close(t.doneCh)
}

// finish settles the task unless it already settled (late duplicate
// results — a presumed-lost worker completing after requeue — are
// discarded; first completion wins). ran selects progress reporting:
// executed shards report, cancellation skips do not (the engine contract).
// The report fires before doneCh closes so every OnProgress callback
// happens-before its Run call returns, matching the engine pool.
func (t *task) finish(v any, err error, ran bool) bool {
	t.mu.Lock()
	if t.state == taskDone {
		t.mu.Unlock()
		return false
	}
	t.state = taskDone
	t.result, t.err = v, err
	t.mu.Unlock()
	if ran && t.report != nil {
		t.report(t.shard.Label)
	}
	close(t.doneCh)
	return true
}

type workerState struct {
	id        string
	name      string
	capacity  int
	lastSeen  time.Time
	leases    map[string]*task // task ID → task
	completed int64
}

// New starts a dispatcher: LocalWorkers executor goroutines (unless
// NoLocal) plus the lease janitor.
func New(opts Options) *Dispatcher {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.MaxRemoteAttempts <= 0 {
		opts.MaxRemoteAttempts = 3
	}
	local := opts.LocalWorkers
	if local <= 0 {
		local = runtime.GOMAXPROCS(0)
	}
	if opts.NoLocal {
		local = 0
	}
	d := &Dispatcher{
		opts:    opts,
		local:   local,
		pending: list.New(),
		notify:  make(chan struct{}),
		workers: make(map[string]*workerState),
		closeCh: make(chan struct{}),
	}
	d.wg.Add(local + 1)
	for i := 0; i < local; i++ {
		go d.localLoop()
	}
	go d.janitor()
	return d
}

// Workers implements engine.Backend: the local parallelism bound. Remote
// capacity attaches and detaches at runtime; see RemoteWorkers.
func (d *Dispatcher) Workers() int { return d.local }

// LeaseTTL returns the effective worker heartbeat deadline.
func (d *Dispatcher) LeaseTTL() time.Duration { return d.opts.LeaseTTL }

// Close stops the executors and the janitor and waits for them. It must
// not be called concurrently with Run (settle or cancel jobs first — the
// service does exactly that).
func (d *Dispatcher) Close() {
	d.closeOnce.Do(func() {
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		close(d.closeCh)
	})
	d.wg.Wait()
}

// wakeLocked signals every waiter (executors, lease long-polls) that the
// queue changed. Caller holds d.mu.
func (d *Dispatcher) wakeLocked() {
	close(d.notify)
	d.notify = make(chan struct{})
}

// Run implements engine.Backend with the package-level engine semantics:
// results in input order, failures joined via engine.ShardError, and
// cancellation reported as ctx.Err() while other callers keep running.
// Concurrent Run calls interleave their tasks on the same queue.
func (d *Dispatcher) Run(ctx context.Context, shards []engine.Shard, opts engine.Options) ([]any, error) {
	if len(shards) == 0 {
		return nil, ctx.Err()
	}
	report := engine.ProgressReporter(opts, len(shards))
	tasks := make([]*task, len(shards))
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	for i, sh := range shards {
		d.taskSeq++
		tasks[i] = &task{
			id:     fmt.Sprintf("t%d", d.taskSeq),
			ctx:    ctx,
			shard:  sh,
			report: report,
			doneCh: make(chan struct{}),
		}
		d.pending.PushBack(tasks[i])
	}
	d.wakeLocked()
	d.mu.Unlock()

	// The watcher unblocks this call promptly on cancellation: tasks still
	// queued or leased settle with ctx.Err() (a lost lease's late reply is
	// discarded); tasks running on a local executor finish there.
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			for _, t := range tasks {
				t.mu.Lock()
				if t.state == taskPending || t.state == taskLeased {
					t.finishLocked(nil, ctx.Err())
				}
				t.mu.Unlock()
			}
			// Drop the settled tasks from the queue now rather than waiting
			// for the next pop to prune them lazily: on a pure scheduler
			// with no worker attached nobody may pop for a long time, and a
			// cancelled job's shard closures must not stay referenced until
			// then.
			d.pruneSettled()
		case <-watchDone:
		}
	}()

	out := make([]any, len(tasks))
	errs := make([]error, len(tasks))
	for i, t := range tasks {
		<-t.doneCh
		t.mu.Lock()
		out[i], errs[i] = t.result, t.err
		t.mu.Unlock()
	}
	close(watchDone)
	watch.Wait()
	return out, engine.JoinShardErrors(ctx, shards, errs)
}

// pruneSettled removes every settled task from the queue (cancellation
// cleanup; pops prune lazily, but an idle queue has no pops).
func (d *Dispatcher) pruneSettled() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for el := d.pending.Front(); el != nil; {
		next := el.Next()
		t := el.Value.(*task)
		t.mu.Lock()
		if t.state != taskPending {
			d.pending.Remove(el)
		}
		t.mu.Unlock()
		el = next
	}
}

// popLocked removes and claims the next runnable task for the given
// placement, pruning settled and cancelled entries as it scans. Caller
// holds d.mu; nil means the queue holds nothing for this placement.
func (d *Dispatcher) popLocked(remote bool) *task {
	for el := d.pending.Front(); el != nil; {
		next := el.Next()
		t := el.Value.(*task)
		t.mu.Lock()
		switch {
		case t.state != taskPending:
			// Settled while queued (cancellation watcher); prune lazily.
			d.pending.Remove(el)
			t.mu.Unlock()
		case t.ctx.Err() != nil:
			// Don't start a shard whose job already died.
			d.pending.Remove(el)
			t.finishLocked(nil, t.ctx.Err())
			t.mu.Unlock()
		case remote && (t.localOnly || t.shard.Remote == nil):
			// Not remote-eligible: leave it for a local executor.
			t.mu.Unlock()
		default:
			d.pending.Remove(el)
			if remote {
				t.state = taskLeased
			} else {
				t.state = taskLocal
			}
			t.mu.Unlock()
			return t
		}
		el = next
	}
	return nil
}

// requeueLocked pushes a lost worker's leased tasks back to the FRONT of
// the queue (interrupted work outranks new work), counting the failed
// attempt and pinning repeat offenders to local execution when local
// executors exist. Caller holds d.mu.
func (d *Dispatcher) requeueLocked(w *workerState) {
	requeued := false
	for _, t := range w.leases {
		t.mu.Lock()
		if t.state != taskLeased {
			t.mu.Unlock()
			continue
		}
		if err := t.ctx.Err(); err != nil {
			t.finishLocked(nil, err)
			t.mu.Unlock()
			continue
		}
		t.remoteAttempts++
		if t.remoteAttempts >= d.opts.MaxRemoteAttempts && d.local > 0 {
			t.localOnly = true
		}
		t.state = taskPending
		t.mu.Unlock()
		d.pending.PushFront(t)
		requeued = true
	}
	w.leases = map[string]*task{}
	if requeued {
		d.wakeLocked()
	}
}

// localLoop is one local executor: it pulls runnable tasks until Close.
func (d *Dispatcher) localLoop() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return
		}
		t := d.popLocked(false)
		notify := d.notify
		d.mu.Unlock()
		if t == nil {
			select {
			case <-notify:
			case <-d.closeCh:
				return
			}
			continue
		}
		v, err := engine.RunShard(t.ctx, t.shard)
		t.finish(v, err, true)
	}
}

// janitor periodically drops workers whose heartbeat deadline passed and
// requeues their leases — the deadline-based recovery path for killed or
// partitioned workers.
func (d *Dispatcher) janitor() {
	defer d.wg.Done()
	tick := d.opts.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.closeCh:
			return
		case <-ticker.C:
			d.expire(time.Now())
		}
	}
}

// expire drops every worker silent past the lease TTL and requeues its
// tasks.
func (d *Dispatcher) expire(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, w := range d.workers {
		if now.Sub(w.lastSeen) > d.opts.LeaseTTL {
			delete(d.workers, id)
			d.requeueLocked(w)
		}
	}
}

// Register adds a worker to the lease table and returns its identity and
// heartbeat contract.
func (d *Dispatcher) Register(name string, capacity int) (RegisterResponse, error) {
	if capacity <= 0 {
		capacity = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return RegisterResponse{}, ErrClosed
	}
	d.workerSeq++
	id := fmt.Sprintf("w%d", d.workerSeq)
	if name == "" {
		name = id
	}
	d.workers[id] = &workerState{
		id:       id,
		name:     name,
		capacity: capacity,
		lastSeen: time.Now(),
		leases:   make(map[string]*task),
	}
	return RegisterResponse{
		Protocol:   ProtocolVersion,
		WorkerID:   id,
		LeaseTTLMs: d.opts.LeaseTTL.Milliseconds(),
	}, nil
}

// Heartbeat renews a worker's liveness deadline.
func (d *Dispatcher) Heartbeat(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	return nil
}

// Deregister removes a worker immediately (graceful shutdown), requeueing
// any leases it still holds.
func (d *Dispatcher) Deregister(workerID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	delete(d.workers, workerID)
	d.requeueLocked(w)
	return nil
}

// Lease hands the worker its next task, long-polling up to wait for one to
// appear. A nil grant with nil error means the poll elapsed empty (HTTP
// 204). Leasing also proves liveness, so a busy worker that polls needs no
// separate heartbeat. Tasks whose server-side Probe (the shard cache)
// already holds the result settle inline and are never shipped.
func (d *Dispatcher) Lease(ctx context.Context, workerID string, wait time.Duration) (*LeaseGrant, error) {
	deadline := time.Now().Add(wait)
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return nil, ErrClosed
		}
		w := d.workers[workerID]
		if w == nil {
			d.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = time.Now()
		var t *task
		if len(w.leases) < w.capacity {
			t = d.popLocked(true)
		}
		notify := d.notify
		if t != nil {
			if probe := t.shard.Remote.Probe; probe != nil {
				// Probe outside d.mu: it touches the result cache and emits
				// events. The task is claimed (taskLeased), so no other
				// placement can race for it.
				d.mu.Unlock()
				if v, ok := probe(); ok {
					t.finish(v, nil, true)
					continue
				}
				d.mu.Lock()
				if d.workers[workerID] != w {
					// The worker expired (or re-registered) while we probed:
					// put the task back and report the stale identity.
					t.mu.Lock()
					if t.state == taskLeased {
						t.state = taskPending
						d.pending.PushFront(t)
						d.wakeLocked()
					}
					t.mu.Unlock()
					d.mu.Unlock()
					return nil, ErrUnknownWorker
				}
			}
			// The task may have settled while unlocked (its job cancelled
			// during the probe): granting it would make a worker compute a
			// whole shard only for Complete to discard the reply.
			t.mu.Lock()
			stillLeased := t.state == taskLeased
			t.mu.Unlock()
			if !stillLeased {
				d.mu.Unlock()
				continue
			}
			w.leases[t.id] = t
			d.mu.Unlock()
			return &LeaseGrant{TaskID: t.id, Spec: t.shard.Remote.Spec}, nil
		}
		d.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, nil
		case <-d.closeCh:
			timer.Stop()
			return nil, ErrClosed
		}
	}
}

// Complete settles a leased task with the worker's reply: a reported shard
// error fails the task (and so the job), a successful reply flows through
// the shard's Accept hook (decode, cache fill, events). Late completions
// for tasks already settled elsewhere are discarded silently; a completion
// for a lease this worker no longer holds returns ErrNoLease.
func (d *Dispatcher) Complete(workerID, taskID string, result []byte, workerErr string) error {
	d.mu.Lock()
	w := d.workers[workerID]
	if w == nil {
		d.mu.Unlock()
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	t := w.leases[taskID]
	if t == nil {
		d.mu.Unlock()
		return ErrNoLease
	}
	delete(w.leases, taskID)
	d.mu.Unlock()

	if workerErr != "" {
		t.finish(nil, fmt.Errorf("dispatch: worker %s: %s", workerID, workerErr), true)
		return nil
	}
	t.mu.Lock()
	settled := t.state == taskDone
	t.mu.Unlock()
	if settled {
		// The task was settled while leased (job cancelled): drop the late
		// reply without Accept side effects.
		return nil
	}
	v, err := t.shard.Remote.Accept(workerID, result)
	if err != nil {
		t.finish(nil, fmt.Errorf("dispatch: worker %s reply for %s: %w", workerID, t.shard.Label, err), true)
		return nil
	}
	if t.finish(v, nil, true) {
		d.mu.Lock()
		if cur := d.workers[workerID]; cur == w {
			w.completed++
		}
		d.mu.Unlock()
	}
	return nil
}

// RemoteWorkers snapshots the lease table for listings and tests, sorted
// by worker ID.
func (d *Dispatcher) RemoteWorkers() []WorkerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(d.workers))
	for _, w := range d.workers {
		out = append(out, WorkerInfo{
			ID:         w.id,
			Name:       w.name,
			Capacity:   w.capacity,
			Inflight:   len(w.leases),
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
			Completed:  w.completed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
