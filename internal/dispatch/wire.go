package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"columndisturb/internal/cache"
	"columndisturb/internal/engine"
	"columndisturb/internal/experiments"
)

// ProtocolVersion is the wire generation of the worker protocol: the "v"
// stamped into every TaskSpec and echoed back by RegisterResponse. A
// worker and a server from different generations refuse to exchange work
// instead of misexecuting it. Bump it together with any incompatible
// change to TaskSpec or the lease verbs.
const ProtocolVersion = 1

// TaskSpec is the unit of remote work: one shard of one experiment under
// one fully resolved configuration. The server serializes it into a lease
// grant and the worker re-derives the shard from its own experiment
// registry — plans are pure functions of (Experiment, Config), so Shard/
// Label address the same closure on both machines; Label doubles as a
// guard against registry drift between builds.
type TaskSpec struct {
	// V is the protocol version, always ProtocolVersion on emission.
	V int `json:"v"`
	// Experiment is the experiment ID (experiments.ByID).
	Experiment string `json:"experiment"`
	// Config is the resolved experiment configuration the shard runs under
	// (already profile- and override-resolved server-side, so the worker
	// needs no profile registry agreement).
	Config experiments.Config `json:"config"`
	// Shard indexes the experiment plan's shard list.
	Shard int `json:"shard"`
	// Label is the canonical label of that shard; a mismatch with the
	// worker's own plan fails the task instead of computing the wrong unit.
	Label string `json:"label"`
	// TraceID is the job's observability trace identifier, propagated so
	// worker-side logs correlate with the server's span records. A pure side
	// channel: it never influences execution or the reply bytes, and an
	// empty value is fine (JSON-additive, so ProtocolVersion is unchanged).
	TraceID string `json:"trace_id,omitempty"`
}

// EncodeTask serializes a task spec for a lease grant.
func EncodeTask(spec TaskSpec) []byte {
	spec.V = ProtocolVersion
	b, err := json.Marshal(spec)
	if err != nil {
		// TaskSpec is a flat struct of scalars; Marshal cannot fail.
		panic("dispatch: task encode: " + err.Error())
	}
	return b
}

// DecodeTask parses and validates one task spec. Malformed, truncated, or
// wrong-version input errors — never panics — so a skewed or hostile
// server cannot crash a worker (fuzz-covered).
func DecodeTask(data []byte) (TaskSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var spec TaskSpec
	if err := dec.Decode(&spec); err != nil {
		return TaskSpec{}, fmt.Errorf("dispatch: bad task spec: %w", err)
	}
	if dec.More() {
		return TaskSpec{}, fmt.Errorf("dispatch: trailing data after task spec")
	}
	if spec.V != ProtocolVersion {
		return TaskSpec{}, fmt.Errorf("dispatch: task protocol version %d, want %d", spec.V, ProtocolVersion)
	}
	if spec.Experiment == "" {
		return TaskSpec{}, fmt.Errorf("dispatch: task spec names no experiment")
	}
	if spec.Shard < 0 {
		return TaskSpec{}, fmt.Errorf("dispatch: negative shard index %d", spec.Shard)
	}
	return spec, nil
}

// ExecuteTask runs one leased task on a worker: it re-derives the shard
// from the local experiment registry, executes it with the engine's panic
// isolation, and returns the result encoded with the shard cache's gob
// codec — the exact bytes the server can Put into its cache and Decode for
// the merge. The returned error is a task failure to report via complete
// (the worker process itself stays healthy).
func ExecuteTask(ctx context.Context, raw []byte) ([]byte, error) {
	spec, err := DecodeTask(raw)
	if err != nil {
		return nil, err
	}
	e, ok := experiments.ByID(spec.Experiment)
	if !ok {
		return nil, fmt.Errorf("dispatch: unknown experiment %q (worker/server registry skew?)", spec.Experiment)
	}
	shards, _, err := experiments.BuildShards(e, spec.Config)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", spec.Experiment, err)
	}
	if spec.Shard >= len(shards) {
		return nil, fmt.Errorf("dispatch: %s: shard %d out of range (plan has %d)", spec.Experiment, spec.Shard, len(shards))
	}
	if got := shards[spec.Shard].Label; got != spec.Label {
		return nil, fmt.Errorf("dispatch: %s: shard %d is %q here, server says %q (registry skew)", spec.Experiment, spec.Shard, got, spec.Label)
	}
	v, err := engine.RunShard(ctx, shards[spec.Shard])
	if err != nil {
		return nil, err
	}
	reply, err := (cache.Gob{}).Encode(v)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: encode shard result: %w", spec.Experiment, err)
	}
	return reply, nil
}

// The remaining wire types are the JSON bodies of the /v1/workers HTTP
// verbs (see internal/service's handler and the client package's worker
// loop — both marshal these same structs, so the codec cannot drift).

// RegisterRequest is the body of POST /v1/workers.
type RegisterRequest struct {
	// Name is an optional human label for listings (defaults to the id).
	Name string `json:"name,omitempty"`
	// Capacity is how many shards the worker executes concurrently
	// (<= 0 selects 1); the server leases it at most this many tasks.
	Capacity int `json:"capacity,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// Protocol echoes ProtocolVersion so mismatched workers bail out.
	Protocol int `json:"protocol"`
	// WorkerID addresses the worker in every subsequent verb.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMs is the heartbeat deadline: a worker silent for longer is
	// dropped and its leased tasks are requeued.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
}

// LeaseGrant is the 200 body of POST /v1/workers/<id>/lease: one task to
// execute. An empty poll returns 204 with no body.
type LeaseGrant struct {
	// TaskID names the lease in the complete verb.
	TaskID string `json:"task_id"`
	// Spec is the serialized TaskSpec (EncodeTask/DecodeTask).
	Spec json.RawMessage `json:"spec"`
}

// CompleteRequest is the body of POST /v1/workers/<id>/tasks/<task>: the
// shard's gob-encoded result, or the error that failed it. Exactly one of
// Result/Error is meaningful.
type CompleteRequest struct {
	// Result is the ExecuteTask reply (JSON base64-encodes it).
	Result []byte `json:"result,omitempty"`
	// Error reports a shard failure (the job fails; lost-worker requeue is
	// the server's business, not an error report).
	Error string `json:"error,omitempty"`
	// TraceID echoes the leased TaskSpec's trace identifier so server-side
	// logs can correlate a completion with its job trace. Informational
	// only; the server never keys anything on it.
	TraceID string `json:"trace_id,omitempty"`
}

// WorkerInfo is one entry of the GET /v1/workers listing.
type WorkerInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	// Inflight is how many leases the worker currently holds.
	Inflight int `json:"inflight"`
	// LastSeenMs is how long ago the worker last proved liveness.
	LastSeenMs int64 `json:"last_seen_ms"`
	// Completed counts tasks the worker has finished successfully.
	Completed int64 `json:"completed"`
	// BusyMs is the summed lease→complete wall time of those tasks — the
	// raw material of the scheduler's throughput-weighted affinity.
	BusyMs int64 `json:"busy_ms"`
	// AvgTaskMs is BusyMs averaged over Completed (0 until the first
	// completion).
	AvgTaskMs float64 `json:"avg_task_ms,omitempty"`
}
