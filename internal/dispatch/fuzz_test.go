package dispatch

import (
	"testing"

	"columndisturb/internal/experiments"
)

// FuzzDecodeTask hardens the worker side of the trust boundary: a lease
// grant's spec bytes come off the network, and a malformed, truncated or
// wrong-version spec must error — never panic — because one bad grant must
// not kill an executor that may hold other leases. Seed corpus committed
// under testdata/fuzz.
func FuzzDecodeTask(f *testing.F) {
	f.Add(EncodeTask(TaskSpec{Experiment: "fig6", Config: experiments.Small(), Shard: 2, Label: "arm 3/3"}))
	f.Add([]byte(`{"v":0,"experiment":"fig6","shard":0,"label":"x"}`))
	f.Add([]byte(`{"v":99,"experiment":"fig6","shard":0,"label":"x"}`))
	f.Add([]byte(`{"v":1,"experiment":"","shard":0}`))
	f.Add([]byte(`{"v":1,"experiment":"fig6","shard":-3,"label":"x"}`))
	f.Add([]byte(`{"v":1,"experiment":"fig6","shard":0}{"v":1}`))
	f.Add([]byte(`{"v":1,"experiment":"fig6","config":{"Seed":"not-a-number"}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeTask(data) // must never panic
		if err != nil {
			return
		}
		if spec.V != ProtocolVersion {
			t.Fatalf("DecodeTask accepted protocol version %d (%s)", spec.V, data)
		}
		if spec.Experiment == "" || spec.Shard < 0 {
			t.Fatalf("DecodeTask accepted an invalid spec %+v (%s)", spec, data)
		}
		// An accepted spec survives the encode/decode round trip the
		// server→worker hop performs.
		back, err := DecodeTask(EncodeTask(spec))
		if err != nil {
			t.Fatalf("accepted spec does not round-trip: %v (%s)", err, data)
		}
		if back != spec {
			t.Fatalf("round trip mutated the spec: %+v vs %+v", back, spec)
		}
	})
}
