// Package ecc implements the error-correcting codes the paper evaluates
// against ColumnDisturb (§5.6): single-error-correcting Hamming codes —
// including the (7,4) code, the (136,128) on-die ECC shape used by DDR5
// devices, and the (72,64) SECDED rank-level code — plus the miscorrection
// analysis showing that a SEC code handed a double error usually
// *adds* a third bitflip (Obs 27).
//
// The construction is the classic positional Hamming code: codeword bits
// occupy positions 1..N, parity bits sit at the power-of-two positions, and
// the syndrome of a single error equals the error's position. For the
// shortened (136,128) code this reproduces the paper's measured ≈88.5%
// double-error miscorrection rate.
package ecc

import (
	"fmt"
	"math/bits"

	"columndisturb/internal/sim/rng"
)

// Status classifies a decode outcome from the decoder's perspective (the
// decoder cannot distinguish a genuine correction from a miscorrection;
// that classification needs ground truth and lives in the analysis).
type Status int

// Decode outcomes.
const (
	// StatusClean means the syndrome was zero: no error detected.
	StatusClean Status = iota
	// StatusCorrected means the decoder flipped one position.
	StatusCorrected
	// StatusDetected means the error is detected but not correctable
	// (invalid syndrome, or SECDED double-error signature).
	StatusDetected
)

func (s Status) String() string {
	switch s {
	case StatusClean:
		return "clean"
	case StatusCorrected:
		return "corrected"
	case StatusDetected:
		return "detected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// SEC is a single-error-correcting Hamming code with K data bits and N
// total bits (positions 1..N; parity at powers of two).
type SEC struct {
	N, K      int
	parityPos []int // power-of-two positions ≤ N
	dataPos   []int // remaining positions, ascending
}

// NewSEC builds the shortest Hamming SEC code carrying dataBits data bits.
// NewSEC(4) is the (7,4) code; NewSEC(128) the (136,128) on-die ECC shape;
// NewSEC(64) the (71,64) core of the SECDED code.
func NewSEC(dataBits int) (*SEC, error) {
	if dataBits < 1 {
		return nil, fmt.Errorf("ecc: need at least one data bit")
	}
	// Find r with 2^r ≥ dataBits + r + 1.
	r := 2
	for (1<<r)-r-1 < dataBits {
		r++
		if r > 30 {
			return nil, fmt.Errorf("ecc: data width %d too large", dataBits)
		}
	}
	n := dataBits + r
	c := &SEC{N: n, K: dataBits}
	for pos := 1; pos <= n; pos++ {
		if pos&(pos-1) == 0 {
			c.parityPos = append(c.parityPos, pos)
		} else {
			c.dataPos = append(c.dataPos, pos)
		}
	}
	return c, nil
}

// Encode maps K data bits (one byte per bit, 0 or 1) to an N-bit codeword
// (index i holds position i+1).
func (c *SEC) Encode(data []byte) ([]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("ecc: data length %d, want %d", len(data), c.K)
	}
	cw := make([]byte, c.N)
	for i, pos := range c.dataPos {
		cw[pos-1] = data[i] & 1
	}
	// Each parity bit at position p covers positions with bit p set;
	// setting it to the XOR of covered bits zeroes the syndrome.
	syn := c.syndrome(cw)
	for _, p := range c.parityPos {
		if syn&p != 0 {
			cw[p-1] ^= 1
		}
	}
	return cw, nil
}

func (c *SEC) syndrome(cw []byte) int {
	s := 0
	for i, b := range cw {
		if b&1 == 1 {
			s ^= i + 1
		}
	}
	return s
}

// DecodeResult reports what the decoder did.
type DecodeResult struct {
	Status Status
	// FlippedPos is the 1-based position the decoder flipped
	// (StatusCorrected only).
	FlippedPos int
}

// Decode corrects cw in place according to the syndrome and returns the
// extracted data bits. A syndrome pointing past N (possible in shortened
// codes) is an uncorrectable-but-detected error.
func (c *SEC) Decode(cw []byte) ([]byte, DecodeResult, error) {
	if len(cw) != c.N {
		return nil, DecodeResult{}, fmt.Errorf("ecc: codeword length %d, want %d", len(cw), c.N)
	}
	res := DecodeResult{}
	if s := c.syndrome(cw); s != 0 {
		if s > c.N {
			res.Status = StatusDetected
		} else {
			cw[s-1] ^= 1
			res.Status = StatusCorrected
			res.FlippedPos = s
		}
	}
	data := make([]byte, c.K)
	for i, pos := range c.dataPos {
		data[i] = cw[pos-1] & 1
	}
	return data, res, nil
}

// SECDED is a single-error-correcting, double-error-detecting extended
// Hamming code: a SEC core plus an overall parity bit appended at the end
// (position N+1 of the codeword slice).
type SECDED struct {
	Core *SEC
}

// NewSECDED builds the extended code; NewSECDED(64) is the classic (72,64)
// rank-level DRAM ECC.
func NewSECDED(dataBits int) (*SECDED, error) {
	core, err := NewSEC(dataBits)
	if err != nil {
		return nil, err
	}
	return &SECDED{Core: core}, nil
}

// N returns the total codeword length including the overall parity bit.
func (c *SECDED) N() int { return c.Core.N + 1 }

// K returns the data width.
func (c *SECDED) K() int { return c.Core.K }

// Encode produces the extended codeword.
func (c *SECDED) Encode(data []byte) ([]byte, error) {
	cw, err := c.Core.Encode(data)
	if err != nil {
		return nil, err
	}
	cw = append(cw, overallParity(cw))
	return cw, nil
}

func overallParity(bitsIn []byte) byte {
	var p byte
	for _, b := range bitsIn {
		p ^= b & 1
	}
	return p
}

// Decode implements the SECDED decision table: syndrome + overall parity
// distinguish single (correctable) from double (detected) errors.
func (c *SECDED) Decode(cw []byte) ([]byte, DecodeResult, error) {
	if len(cw) != c.N() {
		return nil, DecodeResult{}, fmt.Errorf("ecc: codeword length %d, want %d", len(cw), c.N())
	}
	core := cw[:c.Core.N]
	syn := c.Core.syndrome(core)
	parityErr := overallParity(cw) == 1
	res := DecodeResult{}
	switch {
	case syn == 0 && !parityErr:
		// clean
	case syn == 0 && parityErr:
		// The overall parity bit itself flipped.
		cw[c.Core.N] ^= 1
		res.Status = StatusCorrected
		res.FlippedPos = c.Core.N + 1
	case syn != 0 && parityErr:
		// Single error in the core.
		if syn > c.Core.N {
			res.Status = StatusDetected
		} else {
			core[syn-1] ^= 1
			res.Status = StatusCorrected
			res.FlippedPos = syn
		}
	default: // syn != 0 && !parityErr
		// Even number of errors: detected, not correctable.
		res.Status = StatusDetected
	}
	data := make([]byte, c.Core.K)
	for i, pos := range c.Core.dataPos {
		data[i] = core[pos-1] & 1
	}
	return data, res, nil
}

// Overhead returns the storage overhead of a (n,k) code as parity/data —
// e.g. 0.75 for the (7,4) code the paper cites as prohibitively expensive
// (Obs 26).
func Overhead(n, k int) float64 { return float64(n-k) / float64(k) }

// MiscorrectionResult summarizes the Obs 27 experiment.
type MiscorrectionResult struct {
	Trials       int
	Miscorrected int // decoder "corrected", producing wrong data (3rd flip)
	Detected     int // decoder flagged uncorrectable
	LuckyData    int // decoder acted but the data bits happen to be intact
}

// MiscorrectionRate returns the miscorrected fraction.
func (m MiscorrectionResult) MiscorrectionRate() float64 {
	if m.Trials == 0 {
		return 0
	}
	return float64(m.Miscorrected) / float64(m.Trials)
}

// MiscorrectionExperiment reproduces Obs 27: inject exactly two random
// bitflips into random codewords of the SEC code and classify the decoder's
// behaviour against ground truth. For the (136,128) code ≈88.5% of
// double-error codewords are miscorrected into *three*-error codewords.
func MiscorrectionExperiment(c *SEC, trials int, r *rng.Rand) MiscorrectionResult {
	res := MiscorrectionResult{Trials: trials}
	data := make([]byte, c.K)
	for t := 0; t < trials; t++ {
		for i := range data {
			data[i] = byte(r.Uint64() & 1)
		}
		cw, err := c.Encode(data)
		if err != nil {
			panic(err)
		}
		i := r.Intn(c.N)
		j := r.Intn(c.N - 1)
		if j >= i {
			j++
		}
		cw[i] ^= 1
		cw[j] ^= 1
		got, dres, err := c.Decode(cw)
		if err != nil {
			panic(err)
		}
		switch dres.Status {
		case StatusDetected:
			res.Detected++
		case StatusCorrected:
			if bytesEqual(got, data) {
				res.LuckyData++
			} else {
				res.Miscorrected++
			}
		case StatusClean:
			// Impossible for a distance-3 code with 2 errors; count as
			// miscorrection if it ever happened.
			res.Miscorrected++
		}
	}
	return res
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i]&1 != b[i]&1 {
			return false
		}
	}
	return true
}

// popcount is used by tests and analyses comparing codeword distances.
func popcount(cw []byte) int {
	n := 0
	for _, b := range cw {
		n += bits.OnesCount8(b & 1)
	}
	return n
}
