package ecc

import (
	"testing"
	"testing/quick"

	"columndisturb/internal/sim/rng"
)

func TestCodeShapes(t *testing.T) {
	cases := []struct{ data, n int }{
		{4, 7},     // (7,4)
		{64, 71},   // (71,64), SECDED core
		{128, 136}, // (136,128) on-die ECC
	}
	for _, c := range cases {
		code, err := NewSEC(c.data)
		if err != nil {
			t.Fatal(err)
		}
		if code.N != c.n || code.K != c.data {
			t.Errorf("NewSEC(%d) = (%d,%d), want (%d,%d)", c.data, code.N, code.K, c.n, c.data)
		}
	}
	if _, err := NewSEC(0); err == nil {
		t.Fatal("zero data bits must fail")
	}
}

func randData(r *rng.Rand, k int) []byte {
	d := make([]byte, k)
	for i := range d {
		d[i] = byte(r.Uint64() & 1)
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, k := range []int{4, 64, 128} {
		c, err := NewSEC(k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			data := randData(r, k)
			cw, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			got, res, err := c.Decode(cw)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != StatusClean {
				t.Fatalf("clean codeword decoded as %v", res.Status)
			}
			if !bytesEqual(got, data) {
				t.Fatal("round trip corrupted data")
			}
		}
	}
}

func TestSingleErrorCorrection(t *testing.T) {
	r := rng.New(2)
	for _, k := range []int{4, 64, 128} {
		c, _ := NewSEC(k)
		for trial := 0; trial < 100; trial++ {
			data := randData(r, k)
			cw, _ := c.Encode(data)
			pos := r.Intn(c.N)
			cw[pos] ^= 1
			got, res, err := c.Decode(cw)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != StatusCorrected {
				t.Fatalf("single error not corrected: %v", res.Status)
			}
			if res.FlippedPos != pos+1 {
				t.Fatalf("corrected position %d, want %d", res.FlippedPos, pos+1)
			}
			if !bytesEqual(got, data) {
				t.Fatal("single-error correction returned wrong data")
			}
		}
	}
}

func TestEncodeValidatesLength(t *testing.T) {
	c, _ := NewSEC(4)
	if _, err := c.Encode(make([]byte, 5)); err == nil {
		t.Fatal("wrong data length accepted")
	}
	if _, _, err := c.Decode(make([]byte, 3)); err == nil {
		t.Fatal("wrong codeword length accepted")
	}
}

func TestSECDEDRoundTripAndShapes(t *testing.T) {
	c, err := NewSECDED(64)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 72 || c.K() != 64 {
		t.Fatalf("SECDED(64) = (%d,%d), want (72,64)", c.N(), c.K())
	}
	r := rng.New(3)
	data := randData(r, 64)
	cw, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusClean || !bytesEqual(got, data) {
		t.Fatal("SECDED round trip failed")
	}
}

func TestSECDEDSingleCorrectDoubleDetect(t *testing.T) {
	c, _ := NewSECDED(64)
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		data := randData(r, 64)
		cw, _ := c.Encode(data)
		i := r.Intn(c.N())
		cw[i] ^= 1
		got, res, err := c.Decode(cw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusCorrected || !bytesEqual(got, data) {
			t.Fatalf("single error not corrected (pos %d): %v", i, res.Status)
		}
	}
	// Every double error must be detected, never miscorrected — the whole
	// point of the extended parity bit.
	for trial := 0; trial < 200; trial++ {
		data := randData(r, 64)
		cw, _ := c.Encode(data)
		i := r.Intn(c.N())
		j := r.Intn(c.N() - 1)
		if j >= i {
			j++
		}
		cw[i] ^= 1
		cw[j] ^= 1
		_, res, err := c.Decode(cw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusDetected {
			t.Fatalf("double error (%d,%d) decoded as %v", i, j, res.Status)
		}
	}
}

func TestParityBitsPowerOfTwoProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%120) + 4
		c, err := NewSEC(k)
		if err != nil {
			return false
		}
		for _, p := range c.parityPos {
			if p&(p-1) != 0 {
				return false
			}
		}
		return len(c.parityPos)+len(c.dataPos) == c.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOverhead(t *testing.T) {
	// Obs 26: a (7,4) code costs 75% storage overhead.
	if got := Overhead(7, 4); got != 0.75 {
		t.Fatalf("(7,4) overhead %v, want 0.75", got)
	}
	if got := Overhead(136, 128); got != 0.0625 {
		t.Fatalf("(136,128) overhead %v", got)
	}
}

func TestMiscorrectionRate136(t *testing.T) {
	// Obs 27: the (136,128) SEC code miscorrects ≈88.5% of random
	// double-error codewords (the paper's 10K-codeword experiment).
	c, _ := NewSEC(128)
	res := MiscorrectionExperiment(c, 10000, rng.New(42))
	if res.Trials != 10000 {
		t.Fatal("trial bookkeeping wrong")
	}
	rate := res.MiscorrectionRate()
	if rate < 0.85 || rate < 0.80 || rate > 0.93 {
		t.Fatalf("miscorrection rate %.3f, paper reports ≈0.885", rate)
	}
	if res.Miscorrected+res.Detected+res.LuckyData != res.Trials {
		t.Fatal("classification does not partition trials")
	}
}

func TestMiscorrectionAddsThirdFlip(t *testing.T) {
	// A miscorrection turns a 2-error codeword into a 3-error one: verify
	// the Hamming distance to the original codeword grows.
	c, _ := NewSEC(128)
	r := rng.New(5)
	sawMiscorrection := false
	for trial := 0; trial < 200 && !sawMiscorrection; trial++ {
		data := randData(r, 128)
		orig, _ := c.Encode(data)
		cw := append([]byte(nil), orig...)
		i, j := 0, 1
		cw[i] ^= 1
		cw[j] ^= 1
		_, res, _ := c.Decode(cw)
		if res.Status == StatusCorrected && res.FlippedPos != i+1 && res.FlippedPos != j+1 {
			dist := 0
			for b := range cw {
				if cw[b] != orig[b] {
					dist++
				}
			}
			if dist != 3 {
				t.Fatalf("miscorrected codeword at distance %d, want 3", dist)
			}
			sawMiscorrection = true
		}
		// vary the injected pair
		i = r.Intn(c.N)
	}
}

func TestSEC74AlwaysActsOnDoubleErrors(t *testing.T) {
	// The full-length (7,4) code has no invalid syndromes: every double
	// error is miscorrected, never detected (why SEC alone is dangerous).
	c, _ := NewSEC(4)
	res := MiscorrectionExperiment(c, 2000, rng.New(6))
	if res.Detected != 0 {
		t.Fatalf("(7,4) has no invalid syndromes, got %d detections", res.Detected)
	}
}

func TestPopcountHelper(t *testing.T) {
	if popcount([]byte{1, 0, 1, 1}) != 3 {
		t.Fatal("popcount helper wrong")
	}
}
