package memsim

import (
	"fmt"

	"columndisturb/internal/sim/rng"
)

// CoreWorkload is a synthetic memory-intensive core trace in the style of
// the paper's workload mixes: every core has last-level-cache MPKI ≥ 10,
// tunable row-buffer locality, and a read-dominated access mix.
type CoreWorkload struct {
	Name        string
	MPKI        float64 // misses per kilo-instruction (≥ 10: memory intensive)
	RowLocality float64 // probability the next access hits the previous row
	WriteFrac   float64
	Seed        uint64
}

// GapInstructions returns the instructions executed between misses.
func (w CoreWorkload) GapInstructions() float64 { return 1000 / w.MPKI }

// Mixes builds n deterministic four-core multiprogrammed mixes with
// MPKI ≥ 10, mirroring the paper's 20 mixes of four single-core workloads.
func Mixes(n int) [][]CoreWorkload {
	out := make([][]CoreWorkload, n)
	for m := 0; m < n; m++ {
		mix := make([]CoreWorkload, 4)
		for c := 0; c < 4; c++ {
			k := rng.Key(uint64(m), uint64(c), 0xC0FE)
			r := rng.New(k)
			mix[c] = CoreWorkload{
				Name:        fmt.Sprintf("mix%02d.core%d", m, c),
				MPKI:        10 + 40*r.Float64(),
				RowLocality: 0.3 + 0.6*r.Float64(),
				WriteFrac:   0.2,
				Seed:        k,
			}
		}
		out[m] = mix
	}
	return out
}

// request is one memory access.
type request struct {
	bank, row int
	write     bool
}

// partitionAffinity is the probability that a core's bank jump stays
// inside its preferred bank partition. Real systems achieve this with
// address interleaving and page placement; without it, cross-core bank
// conflicts destroy all row locality and the simulation loses the
// row-buffer behaviour refresh policies interact with.
const partitionAffinity = 0.85

// stream generates a core's access sequence deterministically.
type stream struct {
	w        CoreWorkload
	cfg      SystemConfig
	r        *rng.Rand
	bank     int
	row      int
	partLo   int
	partSize int
}

func newStream(w CoreWorkload, cfg SystemConfig, runSeed uint64, coreIdx, numCores int) *stream {
	r := rng.New(rng.Key(w.Seed, runSeed))
	partSize := cfg.Banks / numCores
	if partSize < 1 {
		partSize = 1
	}
	partLo := (coreIdx * partSize) % cfg.Banks
	s := &stream{
		w: w, cfg: cfg, r: r,
		partLo: partLo, partSize: partSize,
	}
	s.jump()
	return s
}

func (s *stream) jump() {
	if s.r.Float64() < partitionAffinity {
		s.bank = s.partLo + s.r.Intn(s.partSize)
	} else {
		s.bank = s.r.Intn(s.cfg.Banks)
	}
	s.row = s.r.Intn(s.cfg.RowsPerBank)
}

func (s *stream) next() request {
	if s.r.Float64() >= s.w.RowLocality {
		s.jump()
	}
	return request{
		bank:  s.bank,
		row:   s.row,
		write: s.r.Float64() < s.w.WriteFrac,
	}
}
