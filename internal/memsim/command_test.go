package memsim

import "testing"

// cmdTestSystem is a deliberately round-numbered configuration (tCK = 1 ns,
// so cycles == ns) making every constraint's effect exactly predictable:
// CL=10 CWL=9 tRCD=12 tRP=13 tRAS=30 tRC=45 tFAW=40 tCCD_S=4 tCCD_L=6
// tRTP=8 tWR=16 burst=2, 8 banks in 2 groups (0–3 and 4–7).
func cmdTestSystem() SystemConfig {
	return SystemConfig{
		Banks: 8, RowsPerBank: 1024, BankGroups: 2,
		TCKns:  1,
		TCASns: 10, TCWLns: 9, TRCDns: 12, TRPns: 13, TRASns: 30, TRCns: 45,
		TRFCns: 100, TFAWns: 40, TCCDSns: 4, TCCDLns: 6, TRTPns: 8, TWRns: 16,
		TBurstNs: 2, RowRefreshNs: 45,
		IPCPeak: 4, CPUGHz: 4, MLP: 4, WarmupInstr: 0, MeasureInstr: 1000,
	}
}

func newTestController(t *testing.T, cfg SystemConfig, refresh RefreshEngine) *memController {
	t.Helper()
	tim, err := cfg.Timing()
	if err != nil {
		t.Fatal(err)
	}
	return newController(cfg, tim, refresh)
}

func TestCommandActToRdObeysTRCD(t *testing.T) {
	mc := newTestController(t, cmdTestSystem(), NoRefresh())
	done, hit := mc.access(0, 1, false, 0)
	if hit {
		t.Fatal("first access cannot hit")
	}
	// ACT at 0, RD no earlier than tRCD=12, data at RD+CL+burst = 24.
	if done != 24 {
		t.Fatalf("first access completes at %d, want 24 (ACT 0 + tRCD 12 + CL 10 + burst 2)", done)
	}
	if mc.acts != 1 || mc.reads != 1 || mc.pres != 0 {
		t.Fatalf("command counts acts=%d reads=%d pres=%d", mc.acts, mc.reads, mc.pres)
	}
	// An immediate same-row access is a hit and needs no ACT.
	done2, hit2 := mc.access(0, 1, false, done)
	if !hit2 || mc.acts != 1 {
		t.Fatal("same-row access must hit the open row")
	}
	if done2 <= done {
		t.Fatal("hit must still occupy a later bus slot")
	}
}

func TestCommandRasBeforePreAndRc(t *testing.T) {
	mc := newTestController(t, cmdTestSystem(), NoRefresh())
	mc.access(0, 1, false, 0) // ACT at 0, RD at 12
	// tRAS (ACT+30) dominates tRTP (RD+8=20): the PRE for a conflicting row
	// may not issue before cycle 30.
	if got := mc.banks[0].preReady; got != 30 {
		t.Fatalf("preReady = %d, want 30 (tRAS after ACT at 0)", got)
	}
	done, hit := mc.access(0, 2, false, 0)
	if hit {
		t.Fatal("row conflict cannot hit")
	}
	// PRE at 30, PRE+tRP = 43, but tRC from the ACT at 0 forces the second
	// ACT to 45: back-to-back ACTs to one bank are tRC apart.
	if got := mc.banks[0].rwReady; got != 45+12 {
		t.Fatalf("second ACT landed at %d (rwReady-tRCD), want 45 (tRC after ACT at 0)", got-12)
	}
	if done != 45+12+10+2 {
		t.Fatalf("conflict access completes at %d, want 69", done)
	}
	if mc.pres != 1 || mc.acts != 2 {
		t.Fatalf("conflict must issue PRE+ACT: pres=%d acts=%d", mc.pres, mc.acts)
	}
}

func TestCommandTrpAfterLatePrecharge(t *testing.T) {
	mc := newTestController(t, cmdTestSystem(), NoRefresh())
	mc.access(0, 1, false, 0)
	// A conflict arriving at 100 precharges immediately (tRAS long
	// satisfied); now tRP=13 is the binding constraint, not tRC (45 < 113).
	done, _ := mc.access(0, 2, false, 100)
	if done != 100+13+12+10+2 {
		t.Fatalf("late conflict completes at %d, want 137 (PRE 100 + tRP 13 + tRCD 12 + CL 10 + burst 2)", done)
	}
}

func TestCommandRtpDelaysPrecharge(t *testing.T) {
	cfg := cmdTestSystem()
	cfg.TRTPns = 25 // now RD+tRTP=37 dominates ACT+tRAS=30
	mc := newTestController(t, cfg, NoRefresh())
	mc.access(0, 1, false, 0) // ACT 0, RD 12
	if got := mc.banks[0].preReady; got != 12+25 {
		t.Fatalf("preReady = %d, want 37 (tRTP after RD at 12)", got)
	}
}

func TestCommandWriteRecoveryDelaysPrecharge(t *testing.T) {
	mc := newTestController(t, cmdTestSystem(), NoRefresh())
	done, _ := mc.access(1, 5, true, 0) // WR at 12, data ends 12+9+2=23
	if done != 23 {
		t.Fatalf("write completes at %d, want 23 (WR 12 + CWL 9 + burst 2)", done)
	}
	// Write recovery: PRE ≥ end of write data + tWR = 39, beyond tRAS = 30.
	if got := mc.banks[1].preReady; got != 23+16 {
		t.Fatalf("preReady = %d, want 39 (tWR after write data)", got)
	}
	done2, _ := mc.access(1, 6, false, 0)
	if done2 != 39+13+12+10+2 {
		t.Fatalf("post-write conflict completes at %d, want 76", done2)
	}
}

func TestCommandFourActivateWindow(t *testing.T) {
	mc := newTestController(t, cmdTestSystem(), NoRefresh())
	// Four ACTs to distinct banks all issue at cycle 0 (no tRRD modeled);
	// the fifth must wait out the sliding window: ACT ≥ first ACT + tFAW.
	var dones []int64
	for b := 0; b < 5; b++ {
		d, _ := mc.access(b, 1, false, 0)
		dones = append(dones, d)
	}
	if mc.acts != 5 {
		t.Fatalf("acts = %d", mc.acts)
	}
	// Bank 4's ACT landed at 40 = tFAW after the four cycle-0 ACTs.
	if got := mc.banks[4].rwReady; got != 40+12 {
		t.Fatalf("fifth ACT at %d (rwReady-tRCD), want 40 (tFAW)", got-12)
	}
	// Banks 0–3 paced only by the column/bus constraints.
	want := []int64{24, 30, 36, 42, 64}
	for i, d := range dones {
		if d != want[i] {
			t.Fatalf("access %d completes at %d, want %d", i, d, want[i])
		}
	}
	// The window SLIDES: after ACTs at {0,0,0,0,40,40,40,40}, a ninth ACT
	// is constrained by the fifth (cycle 40), not the first: ≥ 80.
	for b := 5; b < 8; b++ {
		mc.access(b, 1, false, 0)
	}
	mc.access(0, 2, false, 0) // conflict on bank 0 -> ninth ACT
	if got := mc.banks[0].rwReady - 12; got != 80 {
		t.Fatalf("ninth ACT at %d, want 80 (tFAW from the fifth ACT at 40)", got)
	}
}

func TestCommandCcdShortVsLong(t *testing.T) {
	mc := newTestController(t, cmdTestSystem(), NoRefresh())
	mc.access(0, 1, false, 0) // opens bank 0 (group 0); RD at 12
	mc.access(4, 7, false, 0) // opens bank 4 (group 1); RD at 16 (tCCD_S)
	if got := mc.ccdAny; got != 16 {
		t.Fatalf("cross-group RD at %d, want 16 (tCCD_S=4 after RD at 12)", got)
	}
	// Settle far from the opening transient, then measure pure spacings.
	mc.access(0, 1, false, 100) // hit, RD at 100
	d1, hit := mc.access(0, 1, false, 0)
	if !hit {
		t.Fatal("want row hit")
	}
	// Same bank group: tCCD_L=6 dominates tCCD_S=4 and the bus (burst 2).
	if d1 != 106+10+2 {
		t.Fatalf("same-group back-to-back RD completes at %d, want 118 (tCCD_L spacing)", d1)
	}
	d2, hit := mc.access(4, 7, false, 0)
	if !hit {
		t.Fatal("want row hit on bank 4")
	}
	// Different bank group: only tCCD_S=4 applies.
	if d2 != 110+10+2 {
		t.Fatalf("cross-group RD completes at %d, want 122 (tCCD_S spacing)", d2)
	}
}

func TestCommandRefreshWindowGatesAndClosesRow(t *testing.T) {
	cfg := cmdTestSystem()
	eng, err := PeriodicRefresh(cfg, 64) // tREFI=7812.5ns, tRFC=100
	if err != nil {
		t.Fatal(err)
	}
	mc := newTestController(t, cfg, eng)
	// Cycle 0 falls inside the first REFab window: every command waits out
	// tRFC before issuing.
	done, _ := mc.access(0, 1, false, 0)
	if done != 100+12+10+2 {
		t.Fatalf("access under REFab completes at %d, want 124", done)
	}
	if mc.refStalls == 0 {
		t.Fatal("refresh stall not counted")
	}
	// A REFab window passing while the row sits open closes it (internal
	// precharge): the next same-row access must re-activate.
	actsBefore := mc.acts
	done2, hit := mc.access(0, 1, false, 9000) // window at [7812.5, 7912.5) intervened
	if hit || mc.acts != actsBefore+1 {
		t.Fatalf("refresh must close the open row: hit=%v acts=%d->%d", hit, actsBefore, mc.acts)
	}
	if done2 != 9000+12+10+2 {
		t.Fatalf("post-refresh access completes at %d, want 9024", done2)
	}
}

func TestCommandIdleClosePolicy(t *testing.T) {
	cfg := cmdTestSystem()
	cfg.IdleCloseNs = 200
	mc := newTestController(t, cfg, NoRefresh())
	mc.access(0, 1, false, 0)
	// Within the timeout the row stays open...
	if _, hit := mc.access(0, 1, false, 150); !hit {
		t.Fatal("row must stay open inside the idle timeout")
	}
	// ...but a long gap precharges it speculatively: same row misses, and
	// the ACT is free of tRP (the PRE happened during the gap).
	done, hit := mc.access(0, 1, false, 5000)
	if hit {
		t.Fatal("idle-closed row cannot hit")
	}
	if done != 5000+12+10+2 {
		t.Fatalf("re-open after idle close completes at %d, want 5024", done)
	}
	if mc.pres == 0 {
		t.Fatal("speculative precharge not counted")
	}
}

func TestCommandBusSerializesBursts(t *testing.T) {
	cfg := cmdTestSystem()
	cfg.TCCDSns, cfg.TCCDLns = 2, 2 // relax CCD so the bus is the bottleneck
	mc := newTestController(t, cfg, NoRefresh())
	last, _ := mc.access(0, 1, false, 0)
	// Data beats may not overlap: consecutive transfers are ≥ burst apart.
	for i := 0; i < 6; i++ {
		done, _ := mc.access([]int{0, 4}[i%2], []int{1, 7}[i%2], false, 0)
		if done-last < 2 {
			t.Fatalf("bursts overlap on the bus: %d then %d", last, done)
		}
		last = done
	}
}
