package memsim

import (
	"fmt"
	"math"
	"strings"
)

// RefreshEngine describes when refresh operations block a bank. Refresh
// schedules are strictly periodic, so the simulator queries them
// analytically instead of queueing refresh events.
type RefreshEngine interface {
	Name() string
	// NextFree returns the earliest time ≥ t (ns) at which the bank is not
	// blocked by a refresh operation.
	NextFree(bank int, t float64) float64
	// BlockedBetween reports whether any refresh operation overlapped the
	// bank during (t0, t1] — used to invalidate the open row.
	BlockedBetween(bank int, t0, t1 float64) bool
	// Stats returns the engine's refresh operation rates for energy and
	// Fig 22-style accounting.
	Stats() RefreshStats
}

// RefreshStats summarizes an engine's refresh work.
type RefreshStats struct {
	// AllBankPerSec is the rate of REFab commands.
	AllBankPerSec float64
	// RowPerSecPerBank is the rate of row-granular refresh operations in
	// each bank.
	RowPerSecPerBank float64
}

// schedule is one periodic blocking window.
type schedule struct {
	periodNs float64
	busyNs   float64
	offsetNs float64
	allBanks bool
}

func (s schedule) nextFree(t float64) float64 {
	pos := math.Mod(t-s.offsetNs, s.periodNs)
	if pos < 0 {
		pos += s.periodNs
	}
	if pos < s.busyNs {
		return t + (s.busyNs - pos)
	}
	return t
}

// nextStart returns the start of the first blocking window strictly after
// t, for a t known to be outside every window of this schedule.
func (s schedule) nextStart(t float64) float64 {
	start := s.offsetNs + math.Ceil((t-s.offsetNs)/s.periodNs)*s.periodNs
	if start <= t {
		start += s.periodNs
	}
	return start
}

func (s schedule) blockedBetween(t0, t1 float64) bool {
	if t1 <= t0 {
		return false
	}
	// A window [k·P+off, k·P+off+busy) overlaps (t0, t1] iff some window
	// start lies in (t0-busy, t1].
	start := s.offsetNs + math.Ceil((t0-s.busyNs-s.offsetNs)/s.periodNs)*s.periodNs
	// Guard against the boundary case where start sits exactly at t0-busy.
	if start <= t0-s.busyNs {
		start += s.periodNs
	}
	return start <= t1
}

// scheduleEngine composes periodic schedules, each either chip-wide or
// per-bank staggered.
type scheduleEngine struct {
	name string
	// chipWide apply to every bank identically; perBank[b] apply to bank b.
	chipWide []schedule
	perBank  [][]schedule
	stats    RefreshStats
}

func (e *scheduleEngine) Name() string        { return e.name }
func (e *scheduleEngine) Stats() RefreshStats { return e.stats }

// nextFreeMaxIters bounds the fixed-point iteration in NextFree. One pass
// resolves every window chain that advances in schedule order; each extra
// pass is only needed when a later-listed schedule pushes the time back into
// an earlier-listed one's window, so the bound is the longest such reversed
// chain a sane composition can produce, with a wide margin.
const nextFreeMaxIters = 64

func (e *scheduleEngine) NextFree(bank int, t float64) float64 {
	// Iterate to a fixed point: leaving one window can land inside
	// another.
	for iter := 0; iter < nextFreeMaxIters; iter++ {
		next := t
		for _, s := range e.chipWide {
			next = math.Max(next, s.nextFree(next))
		}
		if e.perBank != nil {
			for _, s := range e.perBank[bank] {
				next = math.Max(next, s.nextFree(next))
			}
		}
		if next == t {
			return t
		}
		t = next
	}
	// Returning here would hand the simulator a still-blocked time and
	// silently corrupt every timing derived from it; a schedule set this
	// deeply chained means the bank effectively never becomes free.
	panic(fmt.Sprintf("memsim: refresh schedule %q did not converge for bank %d within %d iterations (saturated window composition)",
		e.name, bank, nextFreeMaxIters))
}

// freeSpan returns the earliest free time ≥ t together with the start of
// the next blocking window after it — the controller's span cache turns one
// such query into cycle-domain answers for every command issued until the
// span ends (see memController.refreshFree).
func (e *scheduleEngine) freeSpan(bank int, t float64) (free, until float64) {
	free = e.NextFree(bank, t)
	until = math.Inf(1)
	for _, s := range e.chipWide {
		until = math.Min(until, s.nextStart(free))
	}
	if e.perBank != nil {
		for _, s := range e.perBank[bank] {
			until = math.Min(until, s.nextStart(free))
		}
	}
	return free, until
}

func (e *scheduleEngine) BlockedBetween(bank int, t0, t1 float64) bool {
	for _, s := range e.chipWide {
		if s.blockedBetween(t0, t1) {
			return true
		}
	}
	if e.perBank != nil {
		for _, s := range e.perBank[bank] {
			if s.blockedBetween(t0, t1) {
				return true
			}
		}
	}
	return false
}

// NoRefresh returns the hypothetical no-refresh configuration the paper
// uses as the speedup headroom baseline.
func NoRefresh() RefreshEngine {
	return &scheduleEngine{name: "no-refresh"}
}

// PeriodicRefresh returns the standard all-bank refresh: one REFab of
// tRFC every period/8192 (the DDR4/DDR5 convention of 8192 refresh
// commands per window).
func PeriodicRefresh(cfg SystemConfig, periodMs float64) (RefreshEngine, error) {
	const refreshesPerWindow = 8192
	trefi := periodMs * 1e6 / refreshesPerWindow
	if trefi <= cfg.TRFCns {
		return nil, fmt.Errorf("memsim: refresh period %v ms leaves no service time", periodMs)
	}
	return &scheduleEngine{
		name:     fmt.Sprintf("periodic-%.0fms", periodMs),
		chipWide: []schedule{{periodNs: trefi, busyNs: cfg.TRFCns}},
		stats:    RefreshStats{AllBankPerSec: 1e9 / trefi},
	}, nil
}

// RowRateRefresh returns an engine issuing row-granular refresh operations
// in every bank at the given per-bank rate (rows per second), staggered
// across banks so the chip-wide schedule is smooth.
func RowRateRefresh(cfg SystemConfig, name string, rowsPerSecPerBank float64) (RefreshEngine, error) {
	if rowsPerSecPerBank <= 0 {
		return &scheduleEngine{name: name}, nil
	}
	periodNs := 1e9 / rowsPerSecPerBank
	if periodNs <= cfg.RowRefreshNs {
		return nil, fmt.Errorf("memsim: row refresh rate %v/s saturates the bank", rowsPerSecPerBank)
	}
	perBank := make([][]schedule, cfg.Banks)
	for b := range perBank {
		perBank[b] = []schedule{{
			periodNs: periodNs,
			busyNs:   cfg.RowRefreshNs,
			offsetNs: periodNs * float64(b) / float64(cfg.Banks),
		}}
	}
	return &scheduleEngine{
		name:    name,
		perBank: perBank,
		stats:   RefreshStats{RowPerSecPerBank: rowsPerSecPerBank},
	}, nil
}

// Compose overlays several engines (e.g. PRVR = periodic + victim rows).
func Compose(engines ...RefreshEngine) RefreshEngine {
	var names []string
	out := &scheduleEngine{}
	for _, e := range engines {
		se, ok := e.(*scheduleEngine)
		if !ok {
			panic("memsim: Compose supports schedule-based engines only")
		}
		names = append(names, se.name)
		out.chipWide = append(out.chipWide, se.chipWide...)
		if se.perBank != nil {
			if out.perBank == nil {
				out.perBank = make([][]schedule, len(se.perBank))
			} else if len(se.perBank) != len(out.perBank) {
				// Engines built from one SystemConfig always agree on the
				// bank count; silently indexing would either drop schedules
				// or walk off the shorter slice.
				panic(fmt.Sprintf("memsim: Compose: engine %q covers %d banks, earlier engines cover %d",
					se.name, len(se.perBank), len(out.perBank)))
			}
			for b := range se.perBank {
				out.perBank[b] = append(out.perBank[b], se.perBank[b]...)
			}
		}
		out.stats.AllBankPerSec += se.stats.AllBankPerSec
		out.stats.RowPerSecPerBank += se.stats.RowPerSecPerBank
	}
	out.name = strings.Join(names, "+")
	return out
}

// PRVR builds the proactive victim-row refresh mitigation on top of the
// default periodic refresh: victimRows rows per bank refreshed once per
// ttfMs window (the time ColumnDisturb needs to induce its first bitflip),
// assuming every bank hosts a hammered aggressor (§6.1's worst case).
func PRVR(cfg SystemConfig, basePeriodMs float64, victimRows int, ttfMs float64) (RefreshEngine, error) {
	base, err := PeriodicRefresh(cfg, basePeriodMs)
	if err != nil {
		return nil, err
	}
	victims, err := RowRateRefresh(cfg, fmt.Sprintf("prvr-%drows-%.0fms", victimRows, ttfMs),
		float64(victimRows)/(ttfMs/1000))
	if err != nil {
		return nil, err
	}
	return Compose(base, victims), nil
}
