package memsim

import (
	"fmt"
	"math"
	"strings"
)

// RefreshEngine describes when refresh operations block a bank. Refresh
// schedules are strictly periodic, so the simulator queries them
// analytically instead of queueing refresh events.
type RefreshEngine interface {
	Name() string
	// NextFree returns the earliest time ≥ t (ns) at which the bank is not
	// blocked by a refresh operation.
	NextFree(bank int, t float64) float64
	// BlockedBetween reports whether any refresh operation overlapped the
	// bank during (t0, t1] — used to invalidate the open row.
	BlockedBetween(bank int, t0, t1 float64) bool
	// Stats returns the engine's refresh operation rates for energy and
	// Fig 22-style accounting.
	Stats() RefreshStats
}

// RefreshStats summarizes an engine's refresh work.
type RefreshStats struct {
	// AllBankPerSec is the rate of REFab commands.
	AllBankPerSec float64
	// RowPerSecPerBank is the rate of row-granular refresh operations in
	// each bank.
	RowPerSecPerBank float64
}

// schedule is one periodic blocking window.
type schedule struct {
	periodNs float64
	busyNs   float64
	offsetNs float64
	allBanks bool
}

func (s schedule) nextFree(t float64) float64 {
	pos := math.Mod(t-s.offsetNs, s.periodNs)
	if pos < 0 {
		pos += s.periodNs
	}
	if pos < s.busyNs {
		return t + (s.busyNs - pos)
	}
	return t
}

func (s schedule) blockedBetween(t0, t1 float64) bool {
	if t1 <= t0 {
		return false
	}
	// A window [k·P+off, k·P+off+busy) overlaps (t0, t1] iff some window
	// start lies in (t0-busy, t1].
	start := s.offsetNs + math.Ceil((t0-s.busyNs-s.offsetNs)/s.periodNs)*s.periodNs
	// Guard against the boundary case where start sits exactly at t0-busy.
	if start <= t0-s.busyNs {
		start += s.periodNs
	}
	return start <= t1
}

// scheduleEngine composes periodic schedules, each either chip-wide or
// per-bank staggered.
type scheduleEngine struct {
	name string
	// chipWide apply to every bank identically; perBank[b] apply to bank b.
	chipWide []schedule
	perBank  [][]schedule
	stats    RefreshStats
}

func (e *scheduleEngine) Name() string        { return e.name }
func (e *scheduleEngine) Stats() RefreshStats { return e.stats }

func (e *scheduleEngine) NextFree(bank int, t float64) float64 {
	// Iterate to a fixed point: leaving one window can land inside
	// another.
	for iter := 0; iter < 8; iter++ {
		next := t
		for _, s := range e.chipWide {
			next = math.Max(next, s.nextFree(next))
		}
		if e.perBank != nil {
			for _, s := range e.perBank[bank] {
				next = math.Max(next, s.nextFree(next))
			}
		}
		if next == t {
			return t
		}
		t = next
	}
	return t
}

func (e *scheduleEngine) BlockedBetween(bank int, t0, t1 float64) bool {
	for _, s := range e.chipWide {
		if s.blockedBetween(t0, t1) {
			return true
		}
	}
	if e.perBank != nil {
		for _, s := range e.perBank[bank] {
			if s.blockedBetween(t0, t1) {
				return true
			}
		}
	}
	return false
}

// NoRefresh returns the hypothetical no-refresh configuration the paper
// uses as the speedup headroom baseline.
func NoRefresh() RefreshEngine {
	return &scheduleEngine{name: "no-refresh"}
}

// PeriodicRefresh returns the standard all-bank refresh: one REFab of
// tRFC every period/8192 (the DDR4/DDR5 convention of 8192 refresh
// commands per window).
func PeriodicRefresh(cfg SystemConfig, periodMs float64) (RefreshEngine, error) {
	const refreshesPerWindow = 8192
	trefi := periodMs * 1e6 / refreshesPerWindow
	if trefi <= cfg.TRFCns {
		return nil, fmt.Errorf("memsim: refresh period %v ms leaves no service time", periodMs)
	}
	return &scheduleEngine{
		name:     fmt.Sprintf("periodic-%.0fms", periodMs),
		chipWide: []schedule{{periodNs: trefi, busyNs: cfg.TRFCns}},
		stats:    RefreshStats{AllBankPerSec: 1e9 / trefi},
	}, nil
}

// RowRateRefresh returns an engine issuing row-granular refresh operations
// in every bank at the given per-bank rate (rows per second), staggered
// across banks so the chip-wide schedule is smooth.
func RowRateRefresh(cfg SystemConfig, name string, rowsPerSecPerBank float64) (RefreshEngine, error) {
	if rowsPerSecPerBank <= 0 {
		return &scheduleEngine{name: name}, nil
	}
	periodNs := 1e9 / rowsPerSecPerBank
	if periodNs <= cfg.RowRefreshNs {
		return nil, fmt.Errorf("memsim: row refresh rate %v/s saturates the bank", rowsPerSecPerBank)
	}
	perBank := make([][]schedule, cfg.Banks)
	for b := range perBank {
		perBank[b] = []schedule{{
			periodNs: periodNs,
			busyNs:   cfg.RowRefreshNs,
			offsetNs: periodNs * float64(b) / float64(cfg.Banks),
		}}
	}
	return &scheduleEngine{
		name:    name,
		perBank: perBank,
		stats:   RefreshStats{RowPerSecPerBank: rowsPerSecPerBank},
	}, nil
}

// Compose overlays several engines (e.g. PRVR = periodic + victim rows).
func Compose(engines ...RefreshEngine) RefreshEngine {
	var names []string
	out := &scheduleEngine{}
	for _, e := range engines {
		se, ok := e.(*scheduleEngine)
		if !ok {
			panic("memsim: Compose supports schedule-based engines only")
		}
		names = append(names, se.name)
		out.chipWide = append(out.chipWide, se.chipWide...)
		if se.perBank != nil {
			if out.perBank == nil {
				out.perBank = make([][]schedule, len(se.perBank))
			}
			for b := range se.perBank {
				out.perBank[b] = append(out.perBank[b], se.perBank[b]...)
			}
		}
		out.stats.AllBankPerSec += se.stats.AllBankPerSec
		out.stats.RowPerSecPerBank += se.stats.RowPerSecPerBank
	}
	out.name = strings.Join(names, "+")
	return out
}

// PRVR builds the proactive victim-row refresh mitigation on top of the
// default periodic refresh: victimRows rows per bank refreshed once per
// ttfMs window (the time ColumnDisturb needs to induce its first bitflip),
// assuming every bank hosts a hammered aggressor (§6.1's worst case).
func PRVR(cfg SystemConfig, basePeriodMs float64, victimRows int, ttfMs float64) (RefreshEngine, error) {
	base, err := PeriodicRefresh(cfg, basePeriodMs)
	if err != nil {
		return nil, err
	}
	victims, err := RowRateRefresh(cfg, fmt.Sprintf("prvr-%drows-%.0fms", victimRows, ttfMs),
		float64(victimRows)/(ttfMs/1000))
	if err != nil {
		return nil, err
	}
	return Compose(base, victims), nil
}
