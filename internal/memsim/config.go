// Package memsim is a lightweight cycle-level DRAM memory-system simulator
// in the spirit of the Ramulator + Self-Managing-DRAM setup the paper uses
// for its §6.2 evaluation: trace-driven cores with blocking misses, an
// open-page memory controller over banked DRAM with realistic service
// timings, and pluggable refresh mechanisms (none, periodic, RAIDR with a
// Bloom filter or a bitmap tracker, PRVR). Its purpose is the *relative*
// weighted speedup of refresh policies as the weak-row population grows —
// the quantity behind Fig 23 — not absolute performance prediction.
package memsim

// SystemConfig fixes the simulated memory system.
type SystemConfig struct {
	Banks       int
	RowsPerBank int

	// DRAM service timings (ns).
	TCASns   float64
	TRCDns   float64
	TRPns    float64
	TRCns    float64
	TRFCns   float64
	TBurstNs float64
	// RowRefreshNs is the cost of one row-granular refresh operation
	// (RAIDR bins, PRVR victims).
	RowRefreshNs float64
	// IdleCloseNs is the controller's adaptive page policy: a bank idle
	// longer than this is speculatively precharged (for free, during the
	// idle gap). Without it, stale open rows make every refresh-induced
	// row closure *save* the precharge of a later conflict, an artifact
	// that inverts refresh costs. 0 disables the policy.
	IdleCloseNs float64

	// Core model: peak IPC, clock, and memory-level parallelism (maximum
	// outstanding misses per core — the out-of-order window's MLP).
	IPCPeak float64
	CPUGHz  float64
	MLP     int

	// Per-core instruction counts.
	WarmupInstr  int64
	MeasureInstr int64
}

// DefaultSystem returns a DDR4-2400-like single-rank system with four-wide
// 4 GHz cores, sized so a full Fig 23 sweep runs in seconds.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		Banks:       16,
		RowsPerBank: 131072, // 2M rows total: a 16 GiB DDR4 module's row count
		TCASns:      13.5,
		TRCDns:      13.5,
		TRPns:       14,
		TRCns:       46,
		TRFCns:      350,
		TBurstNs:    3.33,
		// Per-row cost of bank-granular directed refresh operations (PRVR
		// victims): one tRC.
		RowRefreshNs: 46,
		IdleCloseNs:  500,
		IPCPeak:      4,
		CPUGHz:       4,
		MLP:          4,
		WarmupInstr:  20_000,
		MeasureInstr: 100_000,
	}
}

// TotalRows returns the module's row count.
func (c SystemConfig) TotalRows() int { return c.Banks * c.RowsPerBank }
