// Package memsim is a cycle-accurate DRAM memory-system simulator in the
// spirit of the Ramulator + Self-Managing-DRAM setup the paper uses for its
// §6.2 evaluation: trace-driven cores with blocking misses over an
// open-page memory controller whose per-bank command state machine issues
// explicit ACT/PRE/RD/WR commands on an integer DRAM-cycle clock, enforcing
// tRCD/tRAS/tRP/tRC/tFAW/tCCD_S/tCCD_L/tRTP/tWR (command.go, timing.go),
// with pluggable refresh mechanisms (none, periodic, RAIDR with a Bloom
// filter or a bitmap tracker, PRVR) whose tRFC-class occupancy windows gate
// the command stream. Its purpose is the *relative* weighted speedup of
// refresh policies as the weak-row population grows — the quantity behind
// Fig 23 — not absolute performance prediction.
package memsim

// SystemConfig fixes the simulated memory system. The nanosecond timing
// parameters are datasheet values; SystemConfig.Timing rounds each up to
// whole DRAM cycles before simulation (see timing.go).
type SystemConfig struct {
	Banks       int
	RowsPerBank int
	// BankGroups partitions the banks into contiguous groups for the
	// tCCD_S (cross-group) vs tCCD_L (same-group) column-command spacing.
	BankGroups int

	// DRAM clock period (ns); every timing below is rounded up to cycles.
	TCKns float64

	// DRAM service timings (ns).
	TCASns   float64 // CL: read command to first data beat
	TCWLns   float64 // CWL: write command to first data beat
	TRCDns   float64
	TRPns    float64
	TRASns   float64
	TRCns    float64
	TRFCns   float64
	TFAWns   float64 // sliding four-activate window, rank-wide
	TCCDSns  float64 // column command spacing, different bank group
	TCCDLns  float64 // column command spacing, same bank group
	TRTPns   float64 // read to precharge
	TWRns    float64 // write recovery: end of write data to precharge
	TBurstNs float64
	// RowRefreshNs is the cost of one row-granular refresh operation
	// (RAIDR bins, PRVR victims).
	RowRefreshNs float64
	// IdleCloseNs is the controller's adaptive page policy: a bank idle
	// longer than this is speculatively precharged (for free, during the
	// idle gap). Without it, stale open rows make every refresh-induced
	// row closure *save* the precharge of a later conflict, an artifact
	// that inverts refresh costs. 0 disables the policy.
	IdleCloseNs float64

	// Core model: peak IPC, clock, and memory-level parallelism (maximum
	// outstanding misses per core — the out-of-order window's MLP).
	IPCPeak float64
	CPUGHz  float64
	MLP     int

	// Per-core instruction counts.
	WarmupInstr  int64
	MeasureInstr int64
}

// DefaultSystem returns a DDR4-2400-like single-rank system with four-wide
// 4 GHz cores, sized so a full Fig 23 sweep runs in seconds.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		Banks:       16,
		RowsPerBank: 131072, // 2M rows total: a 16 GiB DDR4 module's row count
		BankGroups:  4,
		TCKns:       0.833, // DDR4-2400: 1200 MHz command clock
		TCASns:      13.5,
		TCWLns:      12.5,
		TRCDns:      13.5,
		TRPns:       14,
		TRASns:      32,
		TRCns:       46,
		TRFCns:      350,
		TFAWns:      21,
		TCCDSns:     3.33,
		TCCDLns:     5,
		TRTPns:      7.5,
		TWRns:       15,
		TBurstNs:    3.33,
		// Per-row cost of bank-granular directed refresh operations (PRVR
		// victims): one tRC.
		RowRefreshNs: 46,
		IdleCloseNs:  500,
		IPCPeak:      4,
		CPUGHz:       4,
		MLP:          4,
		WarmupInstr:  20_000,
		MeasureInstr: 100_000,
	}
}

// TotalRows returns the module's row count.
func (c SystemConfig) TotalRows() int { return c.Banks * c.RowsPerBank }
