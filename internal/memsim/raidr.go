package memsim

import (
	"fmt"

	"columndisturb/internal/bloom"
)

// Tracker selects how RAIDR remembers which rows are weak.
type Tracker int

// Weak-row tracker implementations (§6.2 evaluates both).
const (
	// TrackerBitmap stores one bit per row: exact classification, high
	// area cost (2 Mb for a 16 GiB module).
	TrackerBitmap Tracker = iota
	// TrackerBloom stores weak rows in a Bloom filter: tiny area (8 Kb),
	// but false positives promote strong rows to the fast refresh rate.
	TrackerBloom
)

// RAIDRConfig parameterizes the retention-aware refresh mechanism.
type RAIDRConfig struct {
	// WeakFraction is the proportion of rows that must be refreshed at the
	// fast rate (retention-weak, or retention+ColumnDisturb-weak).
	WeakFraction float64
	// WeakPeriodMs is the fast refresh period (64 ms).
	WeakPeriodMs float64
	// StrongPeriodMs is the slow refresh period for strong rows (1024 ms).
	StrongPeriodMs float64
	Tracker        Tracker
	// Bloom filter shape (TrackerBloom): the paper uses 8 Kbit, 6 hashes.
	BloomBits   int
	BloomHashes int
}

// DefaultRAIDR returns the paper's §6.2 configuration.
func DefaultRAIDR(tracker Tracker) RAIDRConfig {
	return RAIDRConfig{
		WeakPeriodMs:   64,
		StrongPeriodMs: 1024,
		Tracker:        tracker,
		BloomBits:      8192,
		BloomHashes:    6,
	}
}

// RAIDRInfo reports the mechanism's effective behaviour.
type RAIDRInfo struct {
	WeakRows          int // genuinely weak rows
	EffectiveWeakRows int // rows refreshed at the fast rate (incl. false positives)
	FalsePositiveRate float64
	CommandsPerSec    float64 // REFab-equivalent refresh command rate
}

// refreshCommandsPerWindow mirrors the DDR4 convention of 8192 refresh
// commands covering every row once per refresh window.
const refreshCommandsPerWindow = 8192

// NewRAIDR builds the RAIDR refresh engine for the system: weak rows
// refresh every WeakPeriodMs, strong rows every StrongPeriodMs. Like the
// original RAIDR, refreshes are standard chip-wide refresh commands whose
// *rate* is modulated by the weak/strong bin populations — so a module
// whose rows are all weak degenerates exactly to 64 ms periodic refresh.
// With the Bloom tracker, false positives promote strong rows to the fast
// rate, eroding the benefit as the weak population grows (the Fig 23
// dynamic).
func NewRAIDR(cfg SystemConfig, rc RAIDRConfig) (RefreshEngine, RAIDRInfo, error) {
	if rc.WeakFraction < 0 || rc.WeakFraction > 1 {
		return nil, RAIDRInfo{}, fmt.Errorf("memsim: weak fraction %v out of [0,1]", rc.WeakFraction)
	}
	if rc.WeakPeriodMs <= 0 || rc.StrongPeriodMs < rc.WeakPeriodMs {
		return nil, RAIDRInfo{}, fmt.Errorf("memsim: invalid RAIDR periods %+v", rc)
	}
	totalRows := cfg.TotalRows()
	weak := int(rc.WeakFraction * float64(totalRows))
	info := RAIDRInfo{WeakRows: weak, EffectiveWeakRows: weak}
	if rc.Tracker == TrackerBloom {
		f, err := bloom.New(rc.BloomBits, rc.BloomHashes)
		if err != nil {
			return nil, RAIDRInfo{}, err
		}
		info.FalsePositiveRate = f.TheoreticalFPR(weak)
		info.EffectiveWeakRows = weak + int(info.FalsePositiveRate*float64(totalRows-weak))
	}
	effW := float64(info.EffectiveWeakRows) / float64(totalRows)
	cmdPerSec := refreshCommandsPerWindow *
		(effW/(rc.WeakPeriodMs/1000) + (1-effW)/(rc.StrongPeriodMs/1000))
	info.CommandsPerSec = cmdPerSec
	name := fmt.Sprintf("raidr-%s-w%.2g", map[Tracker]string{TrackerBitmap: "bitmap", TrackerBloom: "bloom"}[rc.Tracker], rc.WeakFraction)
	if cmdPerSec <= 0 {
		return &scheduleEngine{name: name}, info, nil
	}
	periodNs := 1e9 / cmdPerSec
	if periodNs <= cfg.TRFCns {
		return nil, RAIDRInfo{}, fmt.Errorf("memsim: RAIDR command rate %v/s saturates the chip", cmdPerSec)
	}
	eng := &scheduleEngine{
		name:     name,
		chipWide: []schedule{{periodNs: periodNs, busyNs: cfg.TRFCns}},
		stats:    RefreshStats{AllBankPerSec: cmdPerSec},
	}
	return eng, info, nil
}

// BenefitFraction expresses a retention-aware mechanism's result on the
// paper's benefit scale: the share of the no-refresh headroom the mechanism
// captures over plain 64 ms periodic refresh. 1 means all of the headroom
// (as good as not refreshing), 0 means no better than periodic refresh —
// the "≈99 percentage point benefit reduction" of the saturated Bloom
// variant is a drop to ≈0 on this scale.
func BenefitFraction(wsMechanism, wsPeriodic, wsNoRefresh float64) float64 {
	head := wsNoRefresh - wsPeriodic
	if head <= 0 {
		return 0
	}
	return (wsMechanism - wsPeriodic) / head
}

// NormalizedRefreshOps returns the number of row refresh operations a
// retention-aware mechanism performs, normalized to refreshing every row
// every 64 ms (the Fig 22 y-axis): weak rows at 64 ms, strong rows at the
// given strong retention time.
func NormalizedRefreshOps(weakFraction, strongRetentionMs float64) float64 {
	const basePeriod = 64.0
	return weakFraction + (1-weakFraction)*basePeriod/strongRetentionMs
}
