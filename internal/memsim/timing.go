package memsim

import (
	"fmt"
	"math"
)

// Timing is SystemConfig's nanosecond datasheet parameters resolved into
// integer DRAM-cycle counts — the unit the command state machine runs in.
// Every parameter is rounded *up* to whole cycles (the standard controller
// convention: a constraint may never be undershot), so the hottest loop does
// pure integer arithmetic and two runs of the same configuration are
// trivially bit-identical.
type Timing struct {
	TCKns float64 // DRAM clock period

	CAS   int64 // CL: read command to first data beat
	CWL   int64 // write command to first data beat
	RCD   int64 // ACT to RD/WR, same bank
	RP    int64 // PRE to ACT, same bank
	RAS   int64 // ACT to PRE, same bank
	RC    int64 // ACT to ACT, same bank
	RFC   int64 // all-bank refresh occupancy
	FAW   int64 // sliding four-activate window, rank-wide
	CCDS  int64 // RD/WR to RD/WR, different bank group
	CCDL  int64 // RD/WR to RD/WR, same bank group
	RTP   int64 // RD to PRE, same bank
	WR    int64 // write recovery: end of write data to PRE, same bank
	Burst int64 // data-bus beats per access (BL/2)
}

// Cycles converts a nanosecond duration into the smallest whole cycle count
// covering it (round up, with a relative epsilon absorbing float noise so an
// exact multiple of tCK does not round to an extra cycle).
func (t Timing) Cycles(ns float64) int64 {
	if ns <= 0 {
		return 0
	}
	return int64(math.Ceil(ns/t.TCKns - 1e-9))
}

// Ns converts a cycle count back to nanoseconds.
func (t Timing) Ns(cyc int64) float64 { return float64(cyc) * t.TCKns }

// Timing resolves the configuration's nanosecond parameters into cycle
// counts, validating the relations the command state machine depends on.
func (c SystemConfig) Timing() (Timing, error) {
	if c.TCKns <= 0 {
		return Timing{}, fmt.Errorf("memsim: TCKns %v must be positive (see DefaultSystem)", c.TCKns)
	}
	for _, p := range []struct {
		name string
		ns   float64
	}{
		{"TCASns", c.TCASns}, {"TCWLns", c.TCWLns}, {"TRCDns", c.TRCDns},
		{"TRPns", c.TRPns}, {"TRASns", c.TRASns}, {"TRCns", c.TRCns},
		{"TBurstNs", c.TBurstNs},
	} {
		if p.ns <= 0 {
			return Timing{}, fmt.Errorf("memsim: %s %v must be positive", p.name, p.ns)
		}
	}
	for _, p := range []struct {
		name string
		ns   float64
	}{
		{"TRFCns", c.TRFCns}, {"TFAWns", c.TFAWns}, {"TCCDSns", c.TCCDSns},
		{"TCCDLns", c.TCCDLns}, {"TRTPns", c.TRTPns}, {"TWRns", c.TWRns},
	} {
		if p.ns < 0 {
			return Timing{}, fmt.Errorf("memsim: %s %v must be non-negative", p.name, p.ns)
		}
	}
	t := Timing{TCKns: c.TCKns}
	t.CAS = t.Cycles(c.TCASns)
	t.CWL = t.Cycles(c.TCWLns)
	t.RCD = t.Cycles(c.TRCDns)
	t.RP = t.Cycles(c.TRPns)
	t.RAS = t.Cycles(c.TRASns)
	t.RC = t.Cycles(c.TRCns)
	t.RFC = t.Cycles(c.TRFCns)
	t.FAW = t.Cycles(c.TFAWns)
	t.CCDS = t.Cycles(c.TCCDSns)
	t.CCDL = t.Cycles(c.TCCDLns)
	t.RTP = t.Cycles(c.TRTPns)
	t.WR = t.Cycles(c.TWRns)
	t.Burst = t.Cycles(c.TBurstNs)
	if t.CCDS > 0 && t.CCDS < t.Burst {
		return Timing{}, fmt.Errorf("memsim: tCCD_S (%d cycles) below the burst length (%d): data transfers would overlap on the bus", t.CCDS, t.Burst)
	}
	if t.CCDL < t.CCDS {
		return Timing{}, fmt.Errorf("memsim: tCCD_L (%d cycles) below tCCD_S (%d)", t.CCDL, t.CCDS)
	}
	if t.RC < t.RAS {
		return Timing{}, fmt.Errorf("memsim: tRC (%d cycles) below tRAS (%d)", t.RC, t.RAS)
	}
	if c.Banks < 1 || c.RowsPerBank < 1 {
		return Timing{}, fmt.Errorf("memsim: need at least one bank and one row, got %dx%d", c.Banks, c.RowsPerBank)
	}
	if c.BankGroups < 1 || c.Banks%c.BankGroups != 0 {
		return Timing{}, fmt.Errorf("memsim: BankGroups %d must be positive and divide Banks %d", c.BankGroups, c.Banks)
	}
	return t, nil
}
