package memsim

import (
	"fmt"

	"columndisturb/internal/sim/rng"
)

// CoreResult reports one core's measured performance.
type CoreResult struct {
	Workload     CoreWorkload
	Instructions int64
	TimeNs       float64
	IPC          float64
	Requests     int64
	RowHits      int64
}

// RunResult reports one simulation run.
type RunResult struct {
	Cores     []CoreResult
	ElapsedNs float64
	Acts      int64
	Pres      int64 // explicit + speculative precharges
	Reads     int64
	Writes    int64
	RefStalls int64 // commands delayed by a refresh occupancy window
}

// TotalIPC sums the cores' measured IPC.
func (r RunResult) TotalIPC() float64 {
	s := 0.0
	for _, c := range r.Cores {
		s += c.IPC
	}
	return s
}

// maxMPKI bounds the workload's miss intensity at one last-level-cache miss
// per instruction. Beyond it the instruction gap between misses drops below
// one, which has no microarchitectural meaning — and under the old integer
// gap truncation it hung the simulator (gap truncated to 0 meant cores never
// retired anything).
const maxMPKI = 1000

// coreState is the simulator's per-core bookkeeping, in integer DRAM
// cycles. The core is a simple out-of-order model: it executes the
// instruction gap between misses at peak IPC and sustains up to MLP
// outstanding misses; a new miss can issue once its compute is done and the
// miss MLP positions back has completed.
type coreState struct {
	stream       *stream
	gap          float64 // instructions per miss (1000/MPKI, often fractional)
	computeCyc   int64   // compute cycles between misses (rounded up)
	computeReady int64
	completions  []int64 // ring buffer of the last MLP completion cycles
	compIdx      int
	issued       int64
	lastDone     int64
	// retired accumulates in float64 so fractional gaps neither truncate to
	// zero (the MPKI > 1000 hang) nor drift the measured instruction count.
	retired   float64
	measuring bool
	measStart int64   // completion cycle of the warmup-crossing miss
	measInstr float64 // instructions retired strictly inside the window
	requests  int64
	rowHits   int64
	done      bool
}

// nextIssue returns the earliest cycle the core can issue its next miss.
func (c *coreState) nextIssue() int64 {
	t := c.computeReady
	if c.issued >= int64(len(c.completions)) {
		if w := c.completions[c.compIdx]; w > t {
			t = w
		}
	}
	return t
}

// Run simulates the workload mix on the memory system under the given
// refresh engine. Deterministic for a given (mix, engine, seed): the whole
// simulation advances on an integer DRAM-cycle clock through the per-bank
// command state machine (see command.go), so there is no float timing state
// to accumulate or diverge.
func Run(cfg SystemConfig, mix []CoreWorkload, refresh RefreshEngine, seed uint64) (RunResult, error) {
	if len(mix) == 0 {
		return RunResult{}, fmt.Errorf("memsim: empty workload mix")
	}
	tim, err := cfg.Timing()
	if err != nil {
		return RunResult{}, err
	}
	if cfg.IPCPeak <= 0 || cfg.CPUGHz <= 0 {
		return RunResult{}, fmt.Errorf("memsim: IPCPeak %v and CPUGHz %v must be positive", cfg.IPCPeak, cfg.CPUGHz)
	}
	if cfg.WarmupInstr < 0 || cfg.MeasureInstr < 1 {
		return RunResult{}, fmt.Errorf("memsim: need WarmupInstr >= 0 and MeasureInstr >= 1, got %d/%d", cfg.WarmupInstr, cfg.MeasureInstr)
	}
	mlp := cfg.MLP
	if mlp < 1 {
		mlp = 1
	}
	cores := make([]*coreState, len(mix))
	for i, w := range mix {
		if w.MPKI <= 0 || w.MPKI > maxMPKI {
			return RunResult{}, fmt.Errorf("memsim: core %d MPKI %v out of (0, %d]", i, w.MPKI, maxMPKI)
		}
		gap := w.GapInstructions()
		cores[i] = &coreState{
			stream:      newStream(w, cfg, seed, i, len(mix)),
			gap:         gap,
			computeCyc:  tim.Cycles(gap / (cfg.IPCPeak * cfg.CPUGHz)),
			completions: make([]int64, mlp),
		}
	}
	mc := newController(cfg, tim, refresh)
	warm := float64(cfg.WarmupInstr)
	measure := float64(cfg.MeasureInstr)
	res := RunResult{Cores: make([]CoreResult, len(mix))}
	var endCyc int64
	active := len(cores)

	for active > 0 {
		// Pick the next core ready to issue.
		ci := -1
		var best int64
		for i, c := range cores {
			if c.done {
				continue
			}
			if t := c.nextIssue(); ci == -1 || t < best {
				ci, best = i, t
			}
		}
		c := cores[ci]
		req := c.stream.next()
		completion, hit := mc.access(req.bank, req.row, req.write, best)

		// Track the outstanding-miss window and retire the instruction gap
		// this miss anchors.
		c.completions[c.compIdx] = completion
		c.compIdx = (c.compIdx + 1) % len(c.completions)
		c.issued++
		if completion > c.lastDone {
			c.lastDone = completion
		}
		c.computeReady += c.computeCyc
		c.retired += c.gap
		switch {
		case c.measuring:
			// A miss fully inside the measuring window: its gap, request
			// and row-hit all count.
			c.measInstr += c.gap
			c.requests++
			if hit {
				c.rowHits++
			}
		case c.retired >= warm:
			// The miss crossing the warmup boundary belongs to warmup on
			// every axis — instructions, requests and row-hits alike — and
			// anchors the measuring clock at its completion.
			c.measuring = true
			c.measStart = completion
		}
		if c.measuring && c.measInstr >= measure {
			c.done = true
			active--
			cyc := c.lastDone - c.measStart
			if cyc <= 0 {
				cyc = 1
			}
			t := tim.Ns(cyc)
			// Restore by core index (never by workload name): a mix may
			// legitimately contain duplicate workload names, and each slot
			// must keep its own core's measurements.
			res.Cores[ci] = CoreResult{
				Workload:     mix[ci],
				Instructions: int64(c.measInstr + 0.5),
				TimeNs:       t,
				IPC:          c.measInstr / (t * cfg.CPUGHz),
				Requests:     c.requests,
				RowHits:      c.rowHits,
			}
		}
		if completion > endCyc {
			endCyc = completion
		}
	}
	res.ElapsedNs = tim.Ns(endCyc)
	res.Acts = mc.acts
	res.Pres = mc.pres
	res.Reads = mc.reads
	res.Writes = mc.writes
	res.RefStalls = mc.refStalls
	return res, nil
}

// SoloIPC measures a core's IPC running alone with refresh disabled — the
// denominator of weighted speedup.
func SoloIPC(cfg SystemConfig, w CoreWorkload, seed uint64) (float64, error) {
	res, err := Run(cfg, []CoreWorkload{w}, NoRefresh(), seed)
	if err != nil {
		return 0, err
	}
	return res.Cores[0].IPC, nil
}

// MixIPCs runs the mix under the refresh engine and returns the per-core
// shared IPCs — the raw measurements weighted speedup is reduced from.
// Plan builders that split a sweep across shards ship these instead of the
// reduced scalar, so the merge step can fold them against solo baselines
// measured in a different shard.
func MixIPCs(cfg SystemConfig, mix []CoreWorkload, refresh RefreshEngine, seed uint64) ([]float64, error) {
	res, err := Run(cfg, mix, refresh, seed)
	if err != nil {
		return nil, err
	}
	ipcs := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		ipcs[i] = c.IPC
	}
	return ipcs, nil
}

// WeightedSpeedupFrom reduces per-core shared IPCs against solo baselines:
// Σ IPC_shared/IPC_alone. It is the one reduction both WeightedSpeedup and
// split-plan merges use, so the two paths are bitwise identical.
func WeightedSpeedupFrom(sharedIPC, soloIPC []float64) float64 {
	ws := 0.0
	for i, ipc := range sharedIPC {
		if soloIPC[i] > 0 {
			ws += ipc / soloIPC[i]
		}
	}
	return ws
}

// WeightedSpeedup computes Σ IPC_shared/IPC_alone for the mix under the
// refresh engine. soloIPC may be nil, in which case the solo baselines are
// measured on the fly (callers doing sweeps should cache them).
func WeightedSpeedup(cfg SystemConfig, mix []CoreWorkload, refresh RefreshEngine, seed uint64, soloIPC []float64) (float64, RunResult, error) {
	if soloIPC == nil {
		soloIPC = make([]float64, len(mix))
		for i, w := range mix {
			ipc, err := SoloIPC(cfg, w, seed)
			if err != nil {
				return 0, RunResult{}, err
			}
			soloIPC[i] = ipc
		}
	}
	res, err := Run(cfg, mix, refresh, seed)
	if err != nil {
		return 0, RunResult{}, err
	}
	shared := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		shared[i] = c.IPC
	}
	return WeightedSpeedupFrom(shared, soloIPC), res, nil
}

// EnergyModel converts run statistics into DRAM energy (pJ-scale numbers
// from typical DDR4 datasheets; only *relative* energy across refresh
// policies matters here).
type EnergyModel struct {
	ActPJ        float64 // per activate/precharge pair
	RWPJ         float64 // per read/write burst
	RowRefPJ     float64 // per row-granular refresh
	REFabPJ      float64 // per all-bank refresh command
	BackgroundMW float64 // static background power
}

// DefaultEnergy returns DDR4-class energy constants.
func DefaultEnergy() EnergyModel {
	return EnergyModel{ActPJ: 170, RWPJ: 110, RowRefPJ: 170, REFabPJ: 12000, BackgroundMW: 100}
}

// Energy returns the run's DRAM energy in nanojoules under the engine's
// refresh schedule: the ACT/PRE and RD/WR command counts come straight from
// the command stream, the refresh operation counts from the engine's
// schedule rates over the simulated interval.
func (m EnergyModel) Energy(res RunResult, refresh RefreshEngine, cfg SystemConfig) float64 {
	st := refresh.Stats()
	secs := res.ElapsedNs * 1e-9
	refOps := st.AllBankPerSec * secs
	rowOps := st.RowPerSecPerBank * float64(cfg.Banks) * secs
	pj := float64(res.Acts)*m.ActPJ +
		float64(res.Reads+res.Writes)*m.RWPJ +
		rowOps*m.RowRefPJ + refOps*m.REFabPJ
	return pj*1e-3 + m.BackgroundMW*1e-3*res.ElapsedNs // nJ
}

// Deterministic seed helper for experiment reproducibility.
func RunSeed(parts ...uint64) uint64 { return rng.Key(parts...) }
