package memsim

import (
	"fmt"
	"math"

	"columndisturb/internal/sim/rng"
)

// CoreResult reports one core's measured performance.
type CoreResult struct {
	Workload     CoreWorkload
	Instructions int64
	TimeNs       float64
	IPC          float64
	Requests     int64
	RowHits      int64
}

// RunResult reports one simulation run.
type RunResult struct {
	Cores     []CoreResult
	ElapsedNs float64
	Acts      int64
	Reads     int64
	Writes    int64
}

// TotalIPC sums the cores' measured IPC.
func (r RunResult) TotalIPC() float64 {
	s := 0.0
	for _, c := range r.Cores {
		s += c.IPC
	}
	return s
}

// coreState is the simulator's per-core bookkeeping. The core is a simple
// out-of-order model: it executes the instruction gap between misses at
// peak IPC and sustains up to MLP outstanding misses; a new miss can issue
// once its compute is done and the miss MLP positions back has completed.
type coreState struct {
	stream         *stream
	gap            float64 // instructions per miss
	computeNs      float64 // compute time between misses
	computeReadyNs float64
	completions    []float64 // ring buffer of the last MLP completion times
	compIdx        int
	issued         int64
	lastCompletion float64
	retired        int64
	target         int64
	measuring      bool
	measStartNs    float64
	measInstr      int64
	requests       int64
	rowHits        int64
	done           bool
}

// nextIssue returns the earliest time the core can issue its next miss.
func (c *coreState) nextIssue() float64 {
	t := c.computeReadyNs
	if c.issued >= int64(len(c.completions)) {
		if w := c.completions[c.compIdx]; w > t {
			t = w
		}
	}
	return t
}

// Run simulates the workload mix on the memory system under the given
// refresh engine. Deterministic for a given (mix, engine, seed).
func Run(cfg SystemConfig, mix []CoreWorkload, refresh RefreshEngine, seed uint64) (RunResult, error) {
	if len(mix) == 0 {
		return RunResult{}, fmt.Errorf("memsim: empty workload mix")
	}
	mlp := cfg.MLP
	if mlp < 1 {
		mlp = 1
	}
	cores := make([]*coreState, len(mix))
	for i, w := range mix {
		if w.MPKI <= 0 {
			return RunResult{}, fmt.Errorf("memsim: core %d has non-positive MPKI", i)
		}
		gap := w.GapInstructions()
		cores[i] = &coreState{
			stream:      newStream(w, cfg, seed, i, len(mix)),
			gap:         gap,
			computeNs:   gap / (cfg.IPCPeak * cfg.CPUGHz),
			completions: make([]float64, mlp),
			target:      cfg.WarmupInstr + cfg.MeasureInstr,
		}
	}
	bankFreeAt := make([]float64, cfg.Banks)
	openRow := make([]int, cfg.Banks)
	lastUse := make([]float64, cfg.Banks)
	for b := range openRow {
		openRow[b] = -1
	}
	busFreeAt := 0.0
	var res RunResult
	endNs := 0.0

	for {
		// Pick the next core ready to issue.
		ci := -1
		best := 0.0
		for i, c := range cores {
			if c.done {
				continue
			}
			if t := c.nextIssue(); ci == -1 || t < best {
				ci, best = i, t
			}
		}
		if ci == -1 {
			break
		}
		c := cores[ci]
		req := c.stream.next()
		b := req.bank

		start := math.Max(best, bankFreeAt[b])
		start = refresh.NextFree(b, start)

		// Adaptive page policy: banks idle past the timeout were
		// speculatively precharged during the gap.
		if cfg.IdleCloseNs > 0 && openRow[b] != -1 && start-lastUse[b] > cfg.IdleCloseNs {
			openRow[b] = -1
		}
		// Row-buffer state: refresh activity in the gap closes the row.
		hit := openRow[b] == req.row && !refresh.BlockedBetween(b, lastUse[b], start)
		var latency float64
		switch {
		case hit:
			latency = cfg.TCASns
		case openRow[b] == -1 || refresh.BlockedBetween(b, lastUse[b], start):
			latency = cfg.TRCDns + cfg.TCASns
			res.Acts++
		default:
			latency = cfg.TRPns + cfg.TRCDns + cfg.TCASns
			res.Acts++
		}
		dataReady := start + latency
		busSlot := math.Max(dataReady, busFreeAt)
		completion := busSlot + cfg.TBurstNs
		busFreeAt = completion
		bankFreeAt[b] = dataReady
		openRow[b] = req.row
		lastUse[b] = completion
		if req.write {
			res.Writes++
		} else {
			res.Reads++
		}

		// Track the outstanding-miss window and retire the instruction gap
		// this miss anchors.
		c.completions[c.compIdx] = completion
		c.compIdx = (c.compIdx + 1) % len(c.completions)
		c.issued++
		if completion > c.lastCompletion {
			c.lastCompletion = completion
		}
		c.computeReadyNs += c.computeNs
		c.retired += int64(c.gap)
		c.requests++
		if hit {
			c.rowHits++
		}
		if !c.measuring && c.retired >= cfg.WarmupInstr {
			c.measuring = true
			c.measStartNs = completion
			c.measInstr = 0
			c.requests = 0
			c.rowHits = 0
		}
		if c.measuring {
			c.measInstr += int64(c.gap)
		}
		if c.retired >= c.target {
			c.done = true
			t := c.lastCompletion - c.measStartNs
			if t <= 0 {
				t = 1
			}
			res.Cores = append(res.Cores, CoreResult{
				Workload:     mix[ci],
				Instructions: c.measInstr,
				TimeNs:       t,
				IPC:          float64(c.measInstr) / (t * cfg.CPUGHz),
				Requests:     c.requests,
				RowHits:      c.rowHits,
			})
		}
		if completion > endNs {
			endNs = completion
		}
	}
	res.ElapsedNs = endNs
	// Cores complete in arbitrary order; restore mix order.
	ordered := make([]CoreResult, len(mix))
	for _, cr := range res.Cores {
		for i, w := range mix {
			if w.Name == cr.Workload.Name {
				ordered[i] = cr
			}
		}
	}
	res.Cores = ordered
	return res, nil
}

// SoloIPC measures a core's IPC running alone with refresh disabled — the
// denominator of weighted speedup.
func SoloIPC(cfg SystemConfig, w CoreWorkload, seed uint64) (float64, error) {
	res, err := Run(cfg, []CoreWorkload{w}, NoRefresh(), seed)
	if err != nil {
		return 0, err
	}
	return res.Cores[0].IPC, nil
}

// WeightedSpeedup computes Σ IPC_shared/IPC_alone for the mix under the
// refresh engine. soloIPC may be nil, in which case the solo baselines are
// measured on the fly (callers doing sweeps should cache them).
func WeightedSpeedup(cfg SystemConfig, mix []CoreWorkload, refresh RefreshEngine, seed uint64, soloIPC []float64) (float64, RunResult, error) {
	if soloIPC == nil {
		soloIPC = make([]float64, len(mix))
		for i, w := range mix {
			ipc, err := SoloIPC(cfg, w, seed)
			if err != nil {
				return 0, RunResult{}, err
			}
			soloIPC[i] = ipc
		}
	}
	res, err := Run(cfg, mix, refresh, seed)
	if err != nil {
		return 0, RunResult{}, err
	}
	ws := 0.0
	for i, c := range res.Cores {
		if soloIPC[i] > 0 {
			ws += c.IPC / soloIPC[i]
		}
	}
	return ws, res, nil
}

// EnergyModel converts run statistics into DRAM energy (pJ-scale numbers
// from typical DDR4 datasheets; only *relative* energy across refresh
// policies matters here).
type EnergyModel struct {
	ActPJ        float64 // per activate/precharge pair
	RWPJ         float64 // per read/write burst
	RowRefPJ     float64 // per row-granular refresh
	REFabPJ      float64 // per all-bank refresh command
	BackgroundMW float64 // static background power
}

// DefaultEnergy returns DDR4-class energy constants.
func DefaultEnergy() EnergyModel {
	return EnergyModel{ActPJ: 170, RWPJ: 110, RowRefPJ: 170, REFabPJ: 12000, BackgroundMW: 100}
}

// Energy returns the run's DRAM energy in nanojoules under the engine's
// refresh schedule.
func (m EnergyModel) Energy(res RunResult, refresh RefreshEngine, cfg SystemConfig) float64 {
	st := refresh.Stats()
	secs := res.ElapsedNs * 1e-9
	refOps := st.AllBankPerSec * secs
	rowOps := st.RowPerSecPerBank * float64(cfg.Banks) * secs
	pj := float64(res.Acts)*m.ActPJ +
		float64(res.Reads+res.Writes)*m.RWPJ +
		rowOps*m.RowRefPJ + refOps*m.REFabPJ
	return pj*1e-3 + m.BackgroundMW*1e-3*res.ElapsedNs // nJ
}

// Deterministic seed helper for experiment reproducibility.
func RunSeed(parts ...uint64) uint64 { return rng.Key(parts...) }
