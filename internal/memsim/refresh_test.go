package memsim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestScheduleNextFree(t *testing.T) {
	s := schedule{periodNs: 1000, busyNs: 100, offsetNs: 0}
	cases := []struct{ t, want float64 }{
		{0, 100},     // window start: blocked until 100
		{50, 100},    // inside window
		{100, 100},   // window just ended
		{500, 500},   // idle
		{1020, 1100}, // next window
	}
	for _, c := range cases {
		if got := s.nextFree(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("nextFree(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestScheduleNextFreeWithOffset(t *testing.T) {
	s := schedule{periodNs: 1000, busyNs: 100, offsetNs: 250}
	if got := s.nextFree(260); math.Abs(got-350) > 1e-9 {
		t.Fatalf("nextFree(260) = %v, want 350", got)
	}
	if got := s.nextFree(100); got != 100 {
		t.Fatalf("nextFree(100) = %v, want 100", got)
	}
}

func TestScheduleBlockedBetween(t *testing.T) {
	s := schedule{periodNs: 1000, busyNs: 100}
	if !s.blockedBetween(950, 1050) {
		t.Fatal("window at 1000 overlaps (950, 1050]")
	}
	if s.blockedBetween(150, 950) {
		t.Fatal("no window in (150, 950]")
	}
	if !s.blockedBetween(1050, 2100) {
		t.Fatal("window at 2000 overlaps")
	}
	if s.blockedBetween(500, 500) {
		t.Fatal("empty interval cannot be blocked")
	}
}

func TestPeriodicRefreshEngine(t *testing.T) {
	cfg := DefaultSystem()
	eng, err := PeriodicRefresh(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	// tREFI = 64 ms / 8192 = 7812.5 ns; tRFC = 350 ns.
	if got := eng.NextFree(0, 10); math.Abs(got-350) > 1e-9 {
		t.Fatalf("NextFree inside REFab = %v, want 350", got)
	}
	if got := eng.NextFree(3, 1000); got != 1000 {
		t.Fatalf("NextFree idle = %v", got)
	}
	if !eng.BlockedBetween(5, 7800, 7900) {
		t.Fatal("second REFab window missed")
	}
	if eng.Stats().AllBankPerSec == 0 {
		t.Fatal("stats missing")
	}
	if _, err := PeriodicRefresh(cfg, 0.001); err == nil {
		t.Fatal("saturating refresh period accepted")
	}
}

func TestRowRateRefreshStagger(t *testing.T) {
	cfg := DefaultSystem()
	eng, err := RowRateRefresh(cfg, "rows", 1e6) // one row per µs per bank
	if err != nil {
		t.Fatal(err)
	}
	// Bank 0's window starts at 0, bank 8's halfway through the period.
	if got := eng.NextFree(0, 0); math.Abs(got-cfg.RowRefreshNs) > 1e-9 {
		t.Fatalf("bank 0 NextFree(0) = %v", got)
	}
	if got := eng.NextFree(8, 0); got != 0 {
		t.Fatalf("bank 8 should be free at 0, got %v", got)
	}
	if _, err := RowRateRefresh(cfg, "sat", 1e9); err == nil {
		t.Fatal("saturating row rate accepted")
	}
	// Zero rate = no-op engine.
	z, err := RowRateRefresh(cfg, "zero", 0)
	if err != nil {
		t.Fatal(err)
	}
	if z.NextFree(0, 5) != 5 {
		t.Fatal("zero-rate engine must never block")
	}
}

func TestComposeOverlaysSchedules(t *testing.T) {
	cfg := DefaultSystem()
	p, _ := PeriodicRefresh(cfg, 64)
	r, _ := RowRateRefresh(cfg, "rows", 1e5)
	c := Compose(p, r)
	if c.Stats().AllBankPerSec == 0 || c.Stats().RowPerSecPerBank == 0 {
		t.Fatal("composed stats incomplete")
	}
	// Blocked wherever either component blocks.
	if got := c.NextFree(0, 10); got < 350 {
		t.Fatalf("composed engine must respect REFab: %v", got)
	}
}

func TestPRVREngine(t *testing.T) {
	cfg := DefaultSystem()
	eng, err := PRVR(cfg, 32, 3072, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.AllBankPerSec == 0 {
		t.Fatal("PRVR must keep periodic refresh")
	}
	want := 3072.0 / 0.008
	if math.Abs(st.RowPerSecPerBank-want) > 1 {
		t.Fatalf("PRVR victim rate %v, want %v", st.RowPerSecPerBank, want)
	}
}

func TestNoRefreshNeverBlocks(t *testing.T) {
	e := NoRefresh()
	if e.NextFree(0, 123) != 123 || e.BlockedBetween(0, 0, 1e12) {
		t.Fatal("no-refresh engine must never block")
	}
}

// chainEngine builds a pathological composition of n abutting windows
// [0,100), [100,200), ... listed in REVERSE order, so each NextFree
// fixed-point pass escapes exactly one window: the earliest free time from 0
// is n*100 and reaching it takes n+1 passes.
func chainEngine(n int) *scheduleEngine {
	e := &scheduleEngine{name: "chain"}
	for i := n - 1; i >= 0; i-- {
		e.chipWide = append(e.chipWide, schedule{
			periodNs: 1e12, busyNs: 100, offsetNs: float64(i) * 100,
		})
	}
	return e
}

func TestNextFreeConvergesThroughDeepChain(t *testing.T) {
	// Regression: the fixed point used to be capped at 8 iterations and
	// SILENTLY returned a still-blocked time — here the old code would
	// report 800 while windows block everything up to 2000.
	e := chainEngine(20)
	if got := e.NextFree(0, 0); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("NextFree(0) through 20 chained windows = %v, want 2000", got)
	}
	// A free starting point stays untouched.
	if got := e.NextFree(0, 2500); got != 2500 {
		t.Fatalf("NextFree(2500) = %v", got)
	}
}

func TestNextFreePanicsOnSaturatedChain(t *testing.T) {
	// A chain deeper than the iteration bound means the bank effectively
	// never frees; the engine must fail loudly instead of handing the
	// simulator a blocked timestamp.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("saturated schedule composition did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "did not converge") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	chainEngine(100).NextFree(0, 0)
}

func TestComposeBankCountMismatchPanics(t *testing.T) {
	// Regression: Compose used to size perBank from the FIRST per-bank
	// engine; a wider second engine then indexed out of range (or silently
	// dropped banks the other way around).
	small := DefaultSystem()
	small.Banks = 4
	big := DefaultSystem() // 16 banks
	a, err := RowRateRefresh(small, "narrow", 1e5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RowRateRefresh(big, "wide", 1e5)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]RefreshEngine{{a, b}, {b, a}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("mismatched bank counts composed silently")
				}
			}()
			Compose(order[0], order[1])
		}()
	}
	// Same bank count still composes fine.
	c, err := RowRateRefresh(big, "wide2", 2e5)
	if err != nil {
		t.Fatal(err)
	}
	Compose(b, c)
}

func TestFreeSpan(t *testing.T) {
	cfg := DefaultSystem()
	eng, err := PeriodicRefresh(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*scheduleEngine)
	// Inside the first REFab: free at tRFC=350, next window at tREFI=7812.5.
	free, until := se.freeSpan(0, 10)
	if math.Abs(free-350) > 1e-9 || math.Abs(until-7812.5) > 1e-9 {
		t.Fatalf("freeSpan(10) = (%v, %v), want (350, 7812.5)", free, until)
	}
	// Idle: span starts immediately.
	free, until = se.freeSpan(0, 1000)
	if free != 1000 || math.Abs(until-7812.5) > 1e-9 {
		t.Fatalf("freeSpan(1000) = (%v, %v)", free, until)
	}
	// No windows at all: the span never ends.
	nr := NoRefresh().(*scheduleEngine)
	free, until = nr.freeSpan(0, 42)
	if free != 42 || !math.IsInf(until, 1) {
		t.Fatalf("no-refresh freeSpan = (%v, %v)", free, until)
	}
}
