package memsim

import (
	"math"
	"testing"
)

func smallSys() SystemConfig {
	cfg := DefaultSystem()
	cfg.WarmupInstr = 5000
	cfg.MeasureInstr = 40000
	return cfg
}

func TestRunBasics(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(1)[0]
	res, err := Run(cfg, mix, NoRefresh(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Fatalf("want 4 core results, got %d", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.IPC <= 0 || c.IPC > cfg.IPCPeak {
			t.Fatalf("core %d IPC %v out of (0, %v]", i, c.IPC, cfg.IPCPeak)
		}
		if c.Workload.Name != mix[i].Name {
			t.Fatalf("core results out of order")
		}
		if c.Instructions < cfg.MeasureInstr {
			t.Fatalf("core %d measured %d instructions", i, c.Instructions)
		}
	}
	if res.Acts == 0 || res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("missing activity counters: %+v", res)
	}
	if res.ElapsedNs <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(1)[0]
	a, err := Run(cfg, mix, NoRefresh(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, mix, NoRefresh(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i].IPC != b.Cores[i].IPC {
			t.Fatal("identical runs must agree exactly")
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallSys()
	if _, err := Run(cfg, nil, NoRefresh(), 1); err == nil {
		t.Fatal("empty mix accepted")
	}
	bad := Mixes(1)[0]
	bad[0].MPKI = 0
	if _, err := Run(cfg, bad, NoRefresh(), 1); err == nil {
		t.Fatal("zero MPKI accepted")
	}
}

func TestRefreshDegradesIPC(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(2)[1]
	ipc := func(e RefreshEngine) float64 {
		res, err := Run(cfg, mix, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalIPC()
	}
	none := ipc(NoRefresh())
	p64, _ := PeriodicRefresh(cfg, 64)
	p8, _ := PeriodicRefresh(cfg, 8)
	at64 := ipc(p64)
	at8 := ipc(p8)
	if !(none > at64 && at64 > at8) {
		t.Fatalf("refresh must cost performance: none=%v 64ms=%v 8ms=%v", none, at64, at8)
	}
	// An 8 ms period with tRFC=350 blocks ~36% of time; the hit must be
	// substantial.
	if at8 > none*0.95 {
		t.Fatalf("8 ms refresh too cheap: %v vs %v", at8, none)
	}
}

func TestWeightedSpeedupBounds(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(3)[2]
	ws, res, err := WeightedSpeedup(cfg, mix, NoRefresh(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 || ws > float64(len(mix))+1e-9 {
		t.Fatalf("weighted speedup %v out of (0, %d]", ws, len(mix))
	}
	if len(res.Cores) != 4 {
		t.Fatal("missing core results")
	}
	// Shared execution cannot beat solo for every core simultaneously by
	// much; with contention WS should be below the core count.
	if ws > 3.999 {
		t.Fatalf("no contention visible: WS=%v", ws)
	}
}

func TestSoloBaselineCaching(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(4)[3]
	solo := make([]float64, len(mix))
	for i, w := range mix {
		ipc, err := SoloIPC(cfg, w, 5)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = ipc
	}
	a, _, err := WeightedSpeedup(cfg, mix, NoRefresh(), 5, solo)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := WeightedSpeedup(cfg, mix, NoRefresh(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("cached vs fresh solo baselines disagree: %v %v", a, b)
	}
}

func TestRAIDRBeatsPeriodicAtLowWeakFraction(t *testing.T) {
	// The whole point of retention-aware refresh: with few weak rows,
	// refreshing most rows at 1024 ms beats 64 ms periodic refresh.
	cfg := smallSys()
	mix := Mixes(5)[4]
	solo := soloFor(t, cfg, mix)

	p64, err := PeriodicRefresh(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	wsPeriodic, _, err := WeightedSpeedup(cfg, mix, p64, 9, solo)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRAIDR(TrackerBitmap)
	rc.WeakFraction = 1e-4
	raidr, _, err := NewRAIDR(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	wsRaidr, _, err := WeightedSpeedup(cfg, mix, raidr, 9, solo)
	if err != nil {
		t.Fatal(err)
	}
	if wsRaidr <= wsPeriodic {
		t.Fatalf("RAIDR (%v) must beat 64 ms periodic (%v) at 0.01%% weak rows",
			wsRaidr, wsPeriodic)
	}
}

func soloFor(t *testing.T, cfg SystemConfig, mix []CoreWorkload) []float64 {
	t.Helper()
	solo := make([]float64, len(mix))
	for i, w := range mix {
		ipc, err := SoloIPC(cfg, w, 9)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = ipc
	}
	return solo
}

func TestRAIDRWeakFractionErodesSpeedup(t *testing.T) {
	// Fig 23's core dynamic: more weak rows ⇒ more fast refreshes ⇒ lower
	// speedup, monotonically.
	cfg := smallSys()
	mix := Mixes(6)[5]
	solo := soloFor(t, cfg, mix)
	fractions := []float64{1e-4, 0.01, 0.2, 0.5}
	var speedups []float64
	for _, w := range fractions {
		rc := DefaultRAIDR(TrackerBitmap)
		rc.WeakFraction = w
		eng, _, err := NewRAIDR(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := WeightedSpeedup(cfg, mix, eng, 11, solo)
		if err != nil {
			t.Fatal(err)
		}
		speedups = append(speedups, ws)
	}
	// Adjacent points may wiggle ~1% from refresh/access phase alignment;
	// the trend across the sweep must be clearly downward.
	for i := 1; i < len(speedups); i++ {
		if speedups[i] > speedups[i-1]*1.02 {
			t.Fatalf("speedup grew past noise at w=%v: %v after %v",
				fractions[i], speedups[i], speedups[i-1])
		}
	}
	if speedups[len(speedups)-1] >= speedups[0]*0.995 {
		t.Fatalf("50%% weak rows should clearly erode the speedup: %v", speedups)
	}
}

func TestBloomTrackerCollapsesEarly(t *testing.T) {
	// Fig 23 left: the 8 Kb Bloom filter saturates around 0.2% weak rows,
	// promoting a large share of strong rows to the fast rate.
	cfg := DefaultSystem()
	rc := DefaultRAIDR(TrackerBloom)
	rc.WeakFraction = 0.002
	_, info, err := NewRAIDR(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	effFrac := float64(info.EffectiveWeakRows) / float64(cfg.TotalRows())
	if effFrac < 0.05 {
		t.Fatalf("bloom tracker should saturate at 0.2%% weak: effective %.3f", effFrac)
	}
	if info.FalsePositiveRate <= 0 {
		t.Fatal("expected false positives")
	}
	// The bitmap tracker is exact.
	rcB := DefaultRAIDR(TrackerBitmap)
	rcB.WeakFraction = 0.002
	_, infoB, err := NewRAIDR(cfg, rcB)
	if err != nil {
		t.Fatal(err)
	}
	if infoB.EffectiveWeakRows != infoB.WeakRows || infoB.FalsePositiveRate != 0 {
		t.Fatal("bitmap tracker must be exact")
	}
}

func TestNewRAIDRValidation(t *testing.T) {
	cfg := DefaultSystem()
	rc := DefaultRAIDR(TrackerBitmap)
	rc.WeakFraction = -0.1
	if _, _, err := NewRAIDR(cfg, rc); err == nil {
		t.Fatal("negative weak fraction accepted")
	}
	rc = DefaultRAIDR(TrackerBitmap)
	rc.StrongPeriodMs = 1
	if _, _, err := NewRAIDR(cfg, rc); err == nil {
		t.Fatal("strong period below weak period accepted")
	}
}

func TestNormalizedRefreshOps(t *testing.T) {
	// Fig 22: w=1 means everything refreshes at 64 ms (normalized 1);
	// w=0 with a 1024 ms strong retention time needs 1/16 the operations.
	if got := NormalizedRefreshOps(1, 1024); math.Abs(got-1) > 1e-12 {
		t.Fatalf("all-weak ops %v, want 1", got)
	}
	if got := NormalizedRefreshOps(0, 1024); math.Abs(got-0.0625) > 1e-12 {
		t.Fatalf("no-weak ops %v, want 1/16", got)
	}
	// Longer strong retention times always help (first Fig 22 takeaway).
	if NormalizedRefreshOps(0.1, 1024) >= NormalizedRefreshOps(0.1, 128) {
		t.Fatal("1024 ms strong rows must need fewer refreshes than 128 ms")
	}
	// Monotone in weak fraction.
	prev := -1.0
	for w := 0.0; w <= 1.0001; w += 0.1 {
		v := NormalizedRefreshOps(w, 512)
		if v < prev {
			t.Fatal("refresh ops must grow with weak fraction")
		}
		prev = v
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(7)[6]
	em := DefaultEnergy()
	run := func(e RefreshEngine) float64 {
		res, err := Run(cfg, mix, e, 13)
		if err != nil {
			t.Fatal(err)
		}
		return em.Energy(res, e, cfg)
	}
	none := run(NoRefresh())
	p8, _ := PeriodicRefresh(cfg, 8)
	at8 := run(p8)
	if at8 <= none {
		t.Fatalf("aggressive refresh must cost energy: %v vs %v", at8, none)
	}
}

func TestMixesShape(t *testing.T) {
	mixes := Mixes(20)
	if len(mixes) != 20 {
		t.Fatalf("want 20 mixes, got %d", len(mixes))
	}
	seen := map[string]bool{}
	for _, mix := range mixes {
		if len(mix) != 4 {
			t.Fatal("each mix has four cores")
		}
		for _, w := range mix {
			if w.MPKI < 10 {
				t.Fatalf("workload %s MPKI %v below the paper's ≥10 cut", w.Name, w.MPKI)
			}
			if seen[w.Name] {
				t.Fatalf("duplicate workload name %s", w.Name)
			}
			seen[w.Name] = true
		}
	}
	// Deterministic.
	again := Mixes(20)
	if again[3][2] != mixes[3][2] {
		t.Fatal("mixes must be deterministic")
	}
}

func TestBenefitFraction(t *testing.T) {
	// Full headroom captured.
	if got := BenefitFraction(4.0, 3.0, 4.0); got != 1 {
		t.Fatalf("full benefit = %v", got)
	}
	// No better than periodic refresh.
	if got := BenefitFraction(3.0, 3.0, 4.0); got != 0 {
		t.Fatalf("zero benefit = %v", got)
	}
	if got := BenefitFraction(3.5, 3.0, 4.0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half benefit = %v", got)
	}
	// Degenerate headroom.
	if got := BenefitFraction(3.0, 4.0, 4.0); got != 0 {
		t.Fatalf("degenerate headroom = %v", got)
	}
}

func TestBloomBenefitCollapsesNearSaturation(t *testing.T) {
	// Fig 23 left: by 0.2% weak rows the bloom tracker's benefit over
	// periodic refresh is almost completely eliminated (≈99 pp).
	cfg := smallSys()
	mix := Mixes(8)[7]
	solo := soloFor(t, cfg, mix)
	p64, err := PeriodicRefresh(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	wsP, _, err := WeightedSpeedup(cfg, mix, p64, 21, solo)
	if err != nil {
		t.Fatal(err)
	}
	wsN, _, err := WeightedSpeedup(cfg, mix, NoRefresh(), 21, solo)
	if err != nil {
		t.Fatal(err)
	}
	benefit := func(w float64) float64 {
		rc := DefaultRAIDR(TrackerBloom)
		rc.WeakFraction = w
		eng, _, err := NewRAIDR(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := WeightedSpeedup(cfg, mix, eng, 21, solo)
		if err != nil {
			t.Fatal(err)
		}
		return BenefitFraction(ws, wsP, wsN)
	}
	low := benefit(1e-5)
	high := benefit(0.002)
	if low < 0.5 {
		t.Fatalf("bloom RAIDR at 1e-5 weak should capture most headroom: %v", low)
	}
	if high > low-0.3 {
		t.Fatalf("bloom benefit should collapse by 0.2%% weak: %v -> %v", low, high)
	}
}
