package memsim

import (
	"math"
	"testing"
	"time"
)

func smallSys() SystemConfig {
	cfg := DefaultSystem()
	cfg.WarmupInstr = 5000
	cfg.MeasureInstr = 40000
	return cfg
}

func TestRunBasics(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(1)[0]
	res, err := Run(cfg, mix, NoRefresh(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Fatalf("want 4 core results, got %d", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.IPC <= 0 || c.IPC > cfg.IPCPeak {
			t.Fatalf("core %d IPC %v out of (0, %v]", i, c.IPC, cfg.IPCPeak)
		}
		if c.Workload.Name != mix[i].Name {
			t.Fatalf("core results out of order")
		}
		if c.Instructions < cfg.MeasureInstr {
			t.Fatalf("core %d measured %d instructions", i, c.Instructions)
		}
	}
	if res.Acts == 0 || res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("missing activity counters: %+v", res)
	}
	if res.ElapsedNs <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(1)[0]
	a, err := Run(cfg, mix, NoRefresh(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, mix, NoRefresh(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i].IPC != b.Cores[i].IPC {
			t.Fatal("identical runs must agree exactly")
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallSys()
	if _, err := Run(cfg, nil, NoRefresh(), 1); err == nil {
		t.Fatal("empty mix accepted")
	}
	bad := Mixes(1)[0]
	bad[0].MPKI = 0
	if _, err := Run(cfg, bad, NoRefresh(), 1); err == nil {
		t.Fatal("zero MPKI accepted")
	}
}

func TestRefreshDegradesIPC(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(2)[1]
	ipc := func(e RefreshEngine) float64 {
		res, err := Run(cfg, mix, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalIPC()
	}
	none := ipc(NoRefresh())
	p64, _ := PeriodicRefresh(cfg, 64)
	p8, _ := PeriodicRefresh(cfg, 8)
	at64 := ipc(p64)
	at8 := ipc(p8)
	if !(none > at64 && at64 > at8) {
		t.Fatalf("refresh must cost performance: none=%v 64ms=%v 8ms=%v", none, at64, at8)
	}
	// An 8 ms period with tRFC=350 blocks ~36% of time; the hit must be
	// substantial.
	if at8 > none*0.95 {
		t.Fatalf("8 ms refresh too cheap: %v vs %v", at8, none)
	}
}

func TestWeightedSpeedupBounds(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(3)[2]
	ws, res, err := WeightedSpeedup(cfg, mix, NoRefresh(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 || ws > float64(len(mix))+1e-9 {
		t.Fatalf("weighted speedup %v out of (0, %d]", ws, len(mix))
	}
	if len(res.Cores) != 4 {
		t.Fatal("missing core results")
	}
	// Shared execution cannot beat solo for every core simultaneously by
	// much; with contention WS should be below the core count.
	if ws > 3.999 {
		t.Fatalf("no contention visible: WS=%v", ws)
	}
}

func TestSoloBaselineCaching(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(4)[3]
	solo := make([]float64, len(mix))
	for i, w := range mix {
		ipc, err := SoloIPC(cfg, w, 5)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = ipc
	}
	a, _, err := WeightedSpeedup(cfg, mix, NoRefresh(), 5, solo)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := WeightedSpeedup(cfg, mix, NoRefresh(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("cached vs fresh solo baselines disagree: %v %v", a, b)
	}
}

func TestRAIDRBeatsPeriodicAtLowWeakFraction(t *testing.T) {
	// The whole point of retention-aware refresh: with few weak rows,
	// refreshing most rows at 1024 ms beats 64 ms periodic refresh.
	cfg := smallSys()
	mix := Mixes(5)[4]
	solo := soloFor(t, cfg, mix)

	p64, err := PeriodicRefresh(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	wsPeriodic, _, err := WeightedSpeedup(cfg, mix, p64, 9, solo)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRAIDR(TrackerBitmap)
	rc.WeakFraction = 1e-4
	raidr, _, err := NewRAIDR(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	wsRaidr, _, err := WeightedSpeedup(cfg, mix, raidr, 9, solo)
	if err != nil {
		t.Fatal(err)
	}
	if wsRaidr <= wsPeriodic {
		t.Fatalf("RAIDR (%v) must beat 64 ms periodic (%v) at 0.01%% weak rows",
			wsRaidr, wsPeriodic)
	}
}

func soloFor(t *testing.T, cfg SystemConfig, mix []CoreWorkload) []float64 {
	t.Helper()
	solo := make([]float64, len(mix))
	for i, w := range mix {
		ipc, err := SoloIPC(cfg, w, 9)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = ipc
	}
	return solo
}

func TestRAIDRWeakFractionErodesSpeedup(t *testing.T) {
	// Fig 23's core dynamic: more weak rows ⇒ more fast refreshes ⇒ lower
	// speedup, monotonically.
	cfg := smallSys()
	mix := Mixes(6)[5]
	solo := soloFor(t, cfg, mix)
	fractions := []float64{1e-4, 0.01, 0.2, 0.5}
	var speedups []float64
	for _, w := range fractions {
		rc := DefaultRAIDR(TrackerBitmap)
		rc.WeakFraction = w
		eng, _, err := NewRAIDR(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := WeightedSpeedup(cfg, mix, eng, 11, solo)
		if err != nil {
			t.Fatal(err)
		}
		speedups = append(speedups, ws)
	}
	// Adjacent points may wiggle ~1% from refresh/access phase alignment;
	// the trend across the sweep must be clearly downward.
	for i := 1; i < len(speedups); i++ {
		if speedups[i] > speedups[i-1]*1.02 {
			t.Fatalf("speedup grew past noise at w=%v: %v after %v",
				fractions[i], speedups[i], speedups[i-1])
		}
	}
	if speedups[len(speedups)-1] >= speedups[0]*0.995 {
		t.Fatalf("50%% weak rows should clearly erode the speedup: %v", speedups)
	}
}

func TestBloomTrackerCollapsesEarly(t *testing.T) {
	// Fig 23 left: the 8 Kb Bloom filter saturates around 0.2% weak rows,
	// promoting a large share of strong rows to the fast rate.
	cfg := DefaultSystem()
	rc := DefaultRAIDR(TrackerBloom)
	rc.WeakFraction = 0.002
	_, info, err := NewRAIDR(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	effFrac := float64(info.EffectiveWeakRows) / float64(cfg.TotalRows())
	if effFrac < 0.05 {
		t.Fatalf("bloom tracker should saturate at 0.2%% weak: effective %.3f", effFrac)
	}
	if info.FalsePositiveRate <= 0 {
		t.Fatal("expected false positives")
	}
	// The bitmap tracker is exact.
	rcB := DefaultRAIDR(TrackerBitmap)
	rcB.WeakFraction = 0.002
	_, infoB, err := NewRAIDR(cfg, rcB)
	if err != nil {
		t.Fatal(err)
	}
	if infoB.EffectiveWeakRows != infoB.WeakRows || infoB.FalsePositiveRate != 0 {
		t.Fatal("bitmap tracker must be exact")
	}
}

func TestNewRAIDRValidation(t *testing.T) {
	cfg := DefaultSystem()
	rc := DefaultRAIDR(TrackerBitmap)
	rc.WeakFraction = -0.1
	if _, _, err := NewRAIDR(cfg, rc); err == nil {
		t.Fatal("negative weak fraction accepted")
	}
	rc = DefaultRAIDR(TrackerBitmap)
	rc.StrongPeriodMs = 1
	if _, _, err := NewRAIDR(cfg, rc); err == nil {
		t.Fatal("strong period below weak period accepted")
	}
}

func TestNormalizedRefreshOps(t *testing.T) {
	// Fig 22: w=1 means everything refreshes at 64 ms (normalized 1);
	// w=0 with a 1024 ms strong retention time needs 1/16 the operations.
	if got := NormalizedRefreshOps(1, 1024); math.Abs(got-1) > 1e-12 {
		t.Fatalf("all-weak ops %v, want 1", got)
	}
	if got := NormalizedRefreshOps(0, 1024); math.Abs(got-0.0625) > 1e-12 {
		t.Fatalf("no-weak ops %v, want 1/16", got)
	}
	// Longer strong retention times always help (first Fig 22 takeaway).
	if NormalizedRefreshOps(0.1, 1024) >= NormalizedRefreshOps(0.1, 128) {
		t.Fatal("1024 ms strong rows must need fewer refreshes than 128 ms")
	}
	// Monotone in weak fraction.
	prev := -1.0
	for w := 0.0; w <= 1.0001; w += 0.1 {
		v := NormalizedRefreshOps(w, 512)
		if v < prev {
			t.Fatal("refresh ops must grow with weak fraction")
		}
		prev = v
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := smallSys()
	mix := Mixes(7)[6]
	em := DefaultEnergy()
	run := func(e RefreshEngine) float64 {
		res, err := Run(cfg, mix, e, 13)
		if err != nil {
			t.Fatal(err)
		}
		return em.Energy(res, e, cfg)
	}
	none := run(NoRefresh())
	p8, _ := PeriodicRefresh(cfg, 8)
	at8 := run(p8)
	if at8 <= none {
		t.Fatalf("aggressive refresh must cost energy: %v vs %v", at8, none)
	}
}

func TestMixesShape(t *testing.T) {
	mixes := Mixes(20)
	if len(mixes) != 20 {
		t.Fatalf("want 20 mixes, got %d", len(mixes))
	}
	seen := map[string]bool{}
	for _, mix := range mixes {
		if len(mix) != 4 {
			t.Fatal("each mix has four cores")
		}
		for _, w := range mix {
			if w.MPKI < 10 {
				t.Fatalf("workload %s MPKI %v below the paper's ≥10 cut", w.Name, w.MPKI)
			}
			if seen[w.Name] {
				t.Fatalf("duplicate workload name %s", w.Name)
			}
			seen[w.Name] = true
		}
	}
	// Deterministic.
	again := Mixes(20)
	if again[3][2] != mixes[3][2] {
		t.Fatal("mixes must be deterministic")
	}
}

func TestBenefitFraction(t *testing.T) {
	// Full headroom captured.
	if got := BenefitFraction(4.0, 3.0, 4.0); got != 1 {
		t.Fatalf("full benefit = %v", got)
	}
	// No better than periodic refresh.
	if got := BenefitFraction(3.0, 3.0, 4.0); got != 0 {
		t.Fatalf("zero benefit = %v", got)
	}
	if got := BenefitFraction(3.5, 3.0, 4.0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half benefit = %v", got)
	}
	// Degenerate headroom.
	if got := BenefitFraction(3.0, 4.0, 4.0); got != 0 {
		t.Fatalf("degenerate headroom = %v", got)
	}
}

func TestBloomBenefitCollapsesNearSaturation(t *testing.T) {
	// Fig 23 left: by 0.2% weak rows the bloom tracker's benefit over
	// periodic refresh is almost completely eliminated (≈99 pp).
	cfg := smallSys()
	mix := Mixes(8)[7]
	solo := soloFor(t, cfg, mix)
	p64, err := PeriodicRefresh(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	wsP, _, err := WeightedSpeedup(cfg, mix, p64, 21, solo)
	if err != nil {
		t.Fatal(err)
	}
	wsN, _, err := WeightedSpeedup(cfg, mix, NoRefresh(), 21, solo)
	if err != nil {
		t.Fatal(err)
	}
	benefit := func(w float64) float64 {
		rc := DefaultRAIDR(TrackerBloom)
		rc.WeakFraction = w
		eng, _, err := NewRAIDR(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := WeightedSpeedup(cfg, mix, eng, 21, solo)
		if err != nil {
			t.Fatal(err)
		}
		return BenefitFraction(ws, wsP, wsN)
	}
	low := benefit(1e-5)
	high := benefit(0.002)
	if low < 0.5 {
		t.Fatalf("bloom RAIDR at 1e-5 weak should capture most headroom: %v", low)
	}
	if high > low-0.3 {
		t.Fatalf("bloom benefit should collapse by 0.2%% weak: %v -> %v", low, high)
	}
}

func TestDuplicateWorkloadNamesKeepPerCoreResults(t *testing.T) {
	// Regression: results used to be restored by Workload.Name, so a mix
	// with duplicate names aliased every such core onto the last-finished
	// one's measurements. Restoration must be by core index.
	cfg := smallSys()
	mix := []CoreWorkload{
		{Name: "dup", MPKI: 10, RowLocality: 0.9, WriteFrac: 0.2},
		{Name: "dup", MPKI: 50, RowLocality: 0.2, WriteFrac: 0.2},
	}
	res, err := Run(cfg, mix, NoRefresh(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores[0].Workload.MPKI != 10 || res.Cores[1].Workload.MPKI != 50 {
		t.Fatalf("core slots aliased by name: MPKI %v / %v",
			res.Cores[0].Workload.MPKI, res.Cores[1].Workload.MPKI)
	}
	// The MPKI-50 core issues ~5x the misses over the same instruction
	// window; identical request counts would mean one core's numbers were
	// copied over the other's.
	if res.Cores[0].Requests == res.Cores[1].Requests {
		t.Fatalf("duplicate-name cores share a result: %d requests each",
			res.Cores[0].Requests)
	}
	if res.Cores[1].Requests < res.Cores[0].Requests*3 {
		t.Fatalf("MPKI 50 core should issue far more requests: %d vs %d",
			res.Cores[1].Requests, res.Cores[0].Requests)
	}
	if res.Cores[0].IPC <= res.Cores[1].IPC {
		t.Fatalf("row-hit-heavy MPKI 10 core must outrun the MPKI 50 core: %v vs %v",
			res.Cores[0].IPC, res.Cores[1].IPC)
	}
}

func TestHighMPKIBoundedAndGuarded(t *testing.T) {
	// Regression: gap = 1000/MPKI used to be truncated to int, so any
	// MPKI > 1000 made the per-miss retirement zero and Run spun forever.
	// The fixed simulator accumulates fractional gaps and rejects MPKI
	// beyond the one-miss-per-instruction bound outright.
	cfg := smallSys()
	cfg.MeasureInstr = 2000
	bad := []CoreWorkload{{Name: "hot", MPKI: 1001, RowLocality: 0.5}}
	if _, err := Run(cfg, bad, NoRefresh(), 1); err == nil {
		t.Fatal("MPKI above 1000 accepted — the old code hung here")
	}
	// The boundary itself (gap exactly 1) must terminate and measure.
	edge := []CoreWorkload{{Name: "edge", MPKI: 1000, RowLocality: 0.5}}
	done := make(chan RunResult, 1)
	go func() {
		res, err := Run(cfg, edge, NoRefresh(), 1)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.Cores[0].Instructions < cfg.MeasureInstr {
			t.Fatalf("measured only %d instructions", res.Cores[0].Instructions)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MPKI=1000 run did not terminate")
	}
}

func TestFractionalGapAccumulatesExactly(t *testing.T) {
	// MPKI 13 gives gap = 1000/13 ≈ 76.923: with truncation every miss
	// would under-count ~0.92 instructions. The float accumulator keeps
	// Instructions = requests x gap to rounding.
	cfg := smallSys()
	cfg.WarmupInstr = 0
	cfg.MeasureInstr = 10000
	mix := []CoreWorkload{{Name: "frac", MPKI: 13, RowLocality: 0.5}}
	res, err := Run(cfg, mix, NoRefresh(), 23)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cores[0]
	gap := mix[0].GapInstructions()
	if got := float64(c.Instructions) - gap*float64(c.Requests); math.Abs(got) > 1 {
		t.Fatalf("instruction count drifted %v from requests x gap", got)
	}
	// Overshoot past the target is bounded by one gap.
	if c.Instructions < cfg.MeasureInstr || float64(c.Instructions) > float64(cfg.MeasureInstr)+gap+1 {
		t.Fatalf("instructions %d outside [%d, %d+gap]", c.Instructions, cfg.MeasureInstr, cfg.MeasureInstr)
	}
}

func TestWarmupBoundaryConsistent(t *testing.T) {
	// Regression: the warmup-crossing miss used to count toward measured
	// instructions but not toward requests/row-hits, skewing every
	// per-request statistic. All three axes now share one boundary:
	// measured instructions = requests x gap, and the row-hit count can
	// never exceed the request count.
	cfg := smallSys()
	cfg.WarmupInstr = 5000
	cfg.MeasureInstr = 20000
	for _, mpki := range []float64{10, 33, 90} {
		mix := []CoreWorkload{{Name: "warm", MPKI: mpki, RowLocality: 0.7}}
		res, err := Run(cfg, mix, NoRefresh(), 29)
		if err != nil {
			t.Fatal(err)
		}
		c := res.Cores[0]
		gap := mix[0].GapInstructions()
		if drift := float64(c.Instructions) - gap*float64(c.Requests); math.Abs(drift) > 1 {
			t.Fatalf("MPKI %v: instructions %d vs %d requests x gap %.3f drift %v",
				mpki, c.Instructions, c.Requests, gap, drift)
		}
		if c.RowHits > c.Requests {
			t.Fatalf("MPKI %v: %d row hits exceed %d requests", mpki, c.RowHits, c.Requests)
		}
		if c.TimeNs <= 0 || c.IPC <= 0 {
			t.Fatalf("MPKI %v: degenerate measurement %+v", mpki, c)
		}
	}
}

func TestWarmupZeroAndLargeAgree(t *testing.T) {
	// With warmup the measuring window starts later but per-request
	// statistics must stay in the same regime as a warmup-free run.
	cfg := smallSys()
	cfg.MeasureInstr = 20000
	mix := []CoreWorkload{{Name: "w", MPKI: 40, RowLocality: 0.6}}

	cfg.WarmupInstr = 0
	a, err := Run(cfg, mix, NoRefresh(), 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupInstr = 30000
	b, err := Run(cfg, mix, NoRefresh(), 31)
	if err != nil {
		t.Fatal(err)
	}
	ra := float64(a.Cores[0].RowHits) / float64(a.Cores[0].Requests)
	rb := float64(b.Cores[0].RowHits) / float64(b.Cores[0].Requests)
	if math.Abs(ra-rb) > 0.1 {
		t.Fatalf("row-hit rate shifted across warmup settings: %v vs %v", ra, rb)
	}
	if math.Abs(a.Cores[0].IPC-b.Cores[0].IPC) > 0.25*a.Cores[0].IPC {
		t.Fatalf("IPC shifted across warmup settings: %v vs %v", a.Cores[0].IPC, b.Cores[0].IPC)
	}
}
