package memsim

import (
	"strings"
	"testing"
)

func TestTimingCycleRounding(t *testing.T) {
	cfg := DefaultSystem()
	tim, err := cfg.Timing()
	if err != nil {
		t.Fatal(err)
	}
	// All constraints round UP: a command may never undershoot a datasheet
	// parameter. 46 ns at tCK = 0.833 ns is 55.2 cycles -> 56.
	if tim.RC != 56 {
		t.Fatalf("tRC = %d cycles, want 56", tim.RC)
	}
	if tim.Ns(tim.RC) < cfg.TRCns {
		t.Fatalf("rounded tRC %v ns undershoots the datasheet %v ns", tim.Ns(tim.RC), cfg.TRCns)
	}
	// An exact multiple of tCK must not round to an extra cycle.
	exact := Timing{TCKns: 1}
	if got := exact.Cycles(5); got != 5 {
		t.Fatalf("Cycles(5) at tCK=1 = %d, want 5", got)
	}
	if got := exact.Cycles(5.0001); got != 6 {
		t.Fatalf("Cycles(5.0001) = %d, want 6", got)
	}
	if got := exact.Cycles(0); got != 0 {
		t.Fatalf("Cycles(0) = %d, want 0", got)
	}
	// Round-tripping a cycle count through ns is the identity.
	dd4, err := DefaultSystem().Timing()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int64{0, 1, 17, 421, 1 << 30} {
		if got := dd4.Cycles(dd4.Ns(c)); got != c {
			t.Fatalf("Cycles(Ns(%d)) = %d", c, got)
		}
	}
}

func TestTimingValidation(t *testing.T) {
	bad := func(mutate func(*SystemConfig), frag string) {
		t.Helper()
		cfg := DefaultSystem()
		mutate(&cfg)
		_, err := cfg.Timing()
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("want error containing %q, got %v", frag, err)
		}
	}
	bad(func(c *SystemConfig) { c.TCKns = 0 }, "TCKns")
	bad(func(c *SystemConfig) { c.TCASns = 0 }, "TCASns")
	bad(func(c *SystemConfig) { c.TRTPns = -1 }, "TRTPns")
	bad(func(c *SystemConfig) { c.TCCDSns = 1; c.TBurstNs = 5 }, "tCCD_S")
	bad(func(c *SystemConfig) { c.TCCDLns = 1 }, "tCCD_L")
	bad(func(c *SystemConfig) { c.TRCns = 20 }, "tRC")
	bad(func(c *SystemConfig) { c.Banks = 0 }, "bank")
	bad(func(c *SystemConfig) { c.BankGroups = 3 }, "BankGroups")
	bad(func(c *SystemConfig) { c.BankGroups = 0 }, "BankGroups")
}

func TestRunRejectsInvalidTiming(t *testing.T) {
	cfg := smallSys()
	cfg.TCKns = -1
	if _, err := Run(cfg, Mixes(1)[0], NoRefresh(), 1); err == nil {
		t.Fatal("invalid timing accepted")
	}
	cfg = smallSys()
	cfg.IPCPeak = 0
	if _, err := Run(cfg, Mixes(1)[0], NoRefresh(), 1); err == nil {
		t.Fatal("zero IPCPeak accepted")
	}
	cfg = smallSys()
	cfg.MeasureInstr = 0
	if _, err := Run(cfg, Mixes(1)[0], NoRefresh(), 1); err == nil {
		t.Fatal("zero MeasureInstr accepted")
	}
}
