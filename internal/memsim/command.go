package memsim

import "math"

// The per-bank DRAM command state machine. The controller translates each
// core request into the explicit command sequence an open-page controller
// would issue — PRE (on a row conflict), ACT (on a closed bank), then RD or
// WR — and resolves every command's issue cycle against the datasheet
// constraints in integer DRAM cycles:
//
//	ACT   ≥ lastACT+tRC, lastPRE+tRP, 4th-last ACT (any bank)+tFAW
//	RD/WR ≥ ACT+tRCD, lastRW(any bank)+tCCD_S, lastRW(same group)+tCCD_L,
//	        first free data-bus slot
//	PRE   ≥ ACT+tRAS, lastRD+tRTP, end of write data+tWR
//
// REF enters the command stream through the RefreshEngine's schedule: every
// command issue is pushed past the bank's refresh occupancy windows
// (cycle-rounded), and a window passing over an open row closes it, exactly
// as the internal precharge of a real REF does.

// farPast initializes "cycle of last command" trackers so that adding any
// timing constraint to them cannot overflow yet always lands before cycle 0.
const farPast = -1 << 40

// bankState is one bank's slice of the command state machine.
type bankState struct {
	openRow  int   // -1 when precharged
	rwReady  int64 // earliest RD/WR cycle (ACT+tRCD)
	preReady int64 // earliest PRE cycle (tRAS, tRTP and write recovery)
	actReady int64 // earliest ACT cycle (tRC from last ACT, tRP from PRE)
	lastUse  int64 // completion cycle of the bank's last data transfer
}

// refSpan is one bank's cached refresh-free span: every cycle in
// [from, until) is known to sit outside all refresh windows, so commands
// issued inside it never touch the ns-domain schedule engine.
type refSpan struct {
	from, until int64
}

// memController is the rank-level command/timing core: per-bank state plus
// the rank-wide constraint trackers (four-activate window, column-command
// spacing, the shared data bus).
type memController struct {
	t       Timing
	refresh RefreshEngine
	// refIdle short-circuits the ns-domain schedule queries when the engine
	// has no blocking windows at all (the no-refresh baseline).
	refIdle bool
	// sched enables the free-span cache when the engine is schedule-based
	// (every built-in engine is); a foreign RefreshEngine falls back to one
	// NextFree query per command.
	sched     *scheduleEngine
	refSpans  []refSpan
	banks     []bankState
	group     []int    // bank -> bank group (contiguous blocks)
	faw       [4]int64 // issue cycles of the last four ACTs, rank-wide ring
	fawIdx    int
	ccdAny    int64   // last RD/WR issue cycle on any bank (tCCD_S)
	ccdGroup  []int64 // last RD/WR issue cycle per bank group (tCCD_L)
	busFree   int64   // first cycle the shared data bus is free
	idleClose int64   // adaptive page-policy timeout in cycles; 0 disables

	acts, pres, reads, writes int64
	refStalls                 int64 // commands delayed by a refresh window
}

func newController(cfg SystemConfig, t Timing, refresh RefreshEngine) *memController {
	mc := &memController{
		t:         t,
		refresh:   refresh,
		refIdle:   refreshIdle(refresh),
		banks:     make([]bankState, cfg.Banks),
		group:     make([]int, cfg.Banks),
		ccdGroup:  make([]int64, cfg.BankGroups),
		idleClose: t.Cycles(cfg.IdleCloseNs),
	}
	if se, ok := refresh.(*scheduleEngine); ok {
		mc.sched = se
		mc.refSpans = make([]refSpan, cfg.Banks)
		for b := range mc.refSpans {
			mc.refSpans[b] = refSpan{from: 0, until: -1} // empty: first query fills it
		}
	}
	banksPerGroup := cfg.Banks / cfg.BankGroups
	for b := range mc.banks {
		mc.banks[b].openRow = -1
		mc.group[b] = b / banksPerGroup
	}
	for i := range mc.faw {
		mc.faw[i] = farPast
	}
	mc.ccdAny = farPast
	for g := range mc.ccdGroup {
		mc.ccdGroup[g] = farPast
	}
	return mc
}

// refreshFree returns the earliest cycle ≥ cyc at which the bank is outside
// every refresh occupancy window. For schedule-based engines one ns-domain
// query yields a whole free span in cycles, and every command issued inside
// the cached span resolves with two integer compares — the hot path.
func (mc *memController) refreshFree(bank int, cyc int64) int64 {
	if mc.refIdle {
		return cyc
	}
	if mc.sched != nil {
		sp := &mc.refSpans[bank]
		if cyc >= sp.from && cyc < sp.until {
			return cyc
		}
		freeNs, untilNs := mc.sched.freeSpan(bank, mc.t.Ns(cyc))
		free := cyc
		if f := mc.t.Cycles(freeNs); f > cyc {
			mc.refStalls++
			free = f
		}
		sp.from = free
		if math.IsInf(untilNs, 1) {
			sp.until = 1<<62 - 1
		} else {
			// Round down: a cycle landing exactly on the window start is
			// blocked, so it must fall outside the cached span.
			sp.until = int64(untilNs / mc.t.TCKns)
		}
		return free
	}
	ns := mc.t.Ns(cyc)
	free := mc.refresh.NextFree(bank, ns)
	if free <= ns {
		return cyc
	}
	mc.refStalls++
	return mc.t.Cycles(free)
}

// precharge issues a PRE at the given cycle: the bank closes and the next
// ACT must wait out tRP.
func (mc *memController) precharge(bk *bankState, at int64) {
	bk.openRow = -1
	if r := at + mc.t.RP; r > bk.actReady {
		bk.actReady = r
	}
	mc.pres++
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// access runs one request through the command state machine starting no
// earlier than cycle at, and returns the cycle its data transfer completes
// plus whether it hit the open row.
func (mc *memController) access(bank, row int, write bool, at int64) (done int64, hit bool) {
	bk := &mc.banks[bank]
	start := mc.refreshFree(bank, at)

	// Adaptive page policy: a bank idle past the timeout was speculatively
	// precharged during the gap (at the earliest legal PRE cycle — by the
	// time the next request arrives, tRP has long elapsed).
	if mc.idleClose > 0 && bk.openRow >= 0 && start-bk.lastUse > mc.idleClose {
		mc.precharge(bk, maxI64(bk.preReady, bk.lastUse+mc.idleClose))
	}
	// A refresh window passing over the bank closes its row (REF internally
	// precharges). When both endpoints sit inside the span refreshFree just
	// cached, no window can lie between them and the query is skipped.
	if bk.openRow >= 0 && !mc.refIdle {
		inSpan := false
		if mc.sched != nil {
			sp := mc.refSpans[bank]
			inSpan = bk.lastUse >= sp.from && start < sp.until
		}
		if !inSpan && mc.refresh.BlockedBetween(bank, mc.t.Ns(bk.lastUse), mc.t.Ns(start)) {
			bk.openRow = -1
			bk.actReady = maxI64(bk.actReady, start)
		}
	}

	hit = bk.openRow == row
	if !hit {
		if bk.openRow >= 0 {
			mc.precharge(bk, maxI64(start, bk.preReady))
		}
		actAt := maxI64(maxI64(start, bk.actReady), mc.faw[mc.fawIdx]+mc.t.FAW)
		actAt = mc.refreshFree(bank, actAt)
		bk.openRow = row
		bk.rwReady = actAt + mc.t.RCD
		bk.preReady = actAt + mc.t.RAS
		bk.actReady = actAt + mc.t.RC
		mc.faw[mc.fawIdx] = actAt
		mc.fawIdx = (mc.fawIdx + 1) & 3
		mc.acts++
	}

	g := mc.group[bank]
	lat := mc.t.CAS
	if write {
		lat = mc.t.CWL
	}
	rwAt := maxI64(maxI64(start, bk.rwReady),
		maxI64(mc.ccdAny+mc.t.CCDS, mc.ccdGroup[g]+mc.t.CCDL))
	// The shared data bus serializes transfers: delay the column command
	// until its data beats land in a free slot.
	rwAt = maxI64(rwAt, mc.busFree-lat)
	rwAt = mc.refreshFree(bank, rwAt)
	mc.ccdAny = rwAt
	mc.ccdGroup[g] = rwAt
	done = rwAt + lat + mc.t.Burst
	mc.busFree = done
	if write {
		bk.preReady = maxI64(bk.preReady, done+mc.t.WR)
		mc.writes++
	} else {
		bk.preReady = maxI64(bk.preReady, rwAt+mc.t.RTP)
		mc.reads++
	}
	bk.lastUse = done
	return done, hit
}

// refreshIdle reports whether the engine can never block a command, letting
// the controller skip the ns-domain schedule queries entirely.
func refreshIdle(e RefreshEngine) bool {
	se, ok := e.(*scheduleEngine)
	return ok && len(se.chipWide) == 0 && se.perBank == nil
}
