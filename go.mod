module columndisturb

go 1.21
