// Quickstart: demonstrate the ColumnDisturb phenomenon end to end.
//
// We open a (scaled) Samsung 16Gb A-die module, fill three consecutive
// subarrays with all-1 victims, write an all-0 aggressor row into the
// middle subarray, press it for half a second with refresh disabled, and
// read everything back. Bitflips appear in *all three* subarrays — rows
// hundreds of rows away from the aggressor — while an idle (retention)
// control run shows almost nothing. This is the paper's Fig 2 in miniature.
package main

import (
	"fmt"
	"log"

	"columndisturb"
)

func main() {
	const (
		bank       = 0
		pressMs    = 500
		rowsPerSub = 128
		cols       = 256
	)
	chip, err := columndisturb.OpenScaled("S0", 1, 3, rowsPerSub, cols)
	if err != nil {
		log.Fatal(err)
	}
	info := chip.Info()
	fmt.Printf("module %s (%s %s %s-die), %d subarrays x %d rows x %d columns\n\n",
		info.ID, info.Manufacturer, info.Density, info.DieRevision,
		3, rowsPerSub, cols)

	last := chip.RowsPerBank() - 1
	agg := rowsPerSub + rowsPerSub/2 // middle row of the middle subarray

	run := func(press bool) []int {
		if err := chip.FillRows(bank, 0, last, 0xFF); err != nil {
			log.Fatal(err)
		}
		if press {
			if err := chip.FillRows(bank, agg, agg, 0x00); err != nil {
				log.Fatal(err)
			}
			if err := chip.Press(bank, agg, pressMs); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := chip.Idle(pressMs); err != nil {
				log.Fatal(err)
			}
		}
		counts, err := chip.RowBitflips(bank, 0, last, 0xFF)
		if err != nil {
			log.Fatal(err)
		}
		return counts
	}

	pressed := run(true)
	idle := run(false)

	fmt.Printf("%-10s %-22s %-22s\n", "subarray", "ColumnDisturb (press)", "retention (idle)")
	for s := 0; s < 3; s++ {
		var cd, ret, rows int
		for r := s * rowsPerSub; r < (s+1)*rowsPerSub; r++ {
			if r >= agg-1 && r <= agg+1 {
				continue // RowHammer/RowPress territory, excluded (§3.2)
			}
			cd += pressed[r]
			ret += idle[r]
			rows++
		}
		marker := ""
		if s == 1 {
			marker = " (aggressor)"
		}
		fmt.Printf("%-10s %-22s %-22s\n", fmt.Sprintf("%d%s", s, marker),
			fmt.Sprintf("%d bitflips", cd), fmt.Sprintf("%d bitflips", ret))
	}
	fmt.Printf("\npressing one row for %d ms disturbed cells across all three subarrays\n", pressMs)
	fmt.Println("through the shared bitlines — that is ColumnDisturb.")
}
