// Characterize: run the paper's methodology (§3.2) against a module the
// way the real testing infrastructure would.
//
//  1. Reverse engineer the subarray boundaries with RowClone: two
//     activations with an interrupted precharge copy a row onto another
//     row exactly when both share sense amplifiers.
//  2. Run the bisection search for the minimum time to the first
//     ColumnDisturb bitflip in several subarrays, at two temperatures.
//
// Everything happens through DDR command programs on the simulated device —
// the code path a real DRAM Bender deployment would exercise.
package main

import (
	"fmt"
	"log"

	"columndisturb"
)

func main() {
	// A scaled Micron 16Gb F-die — the paper's most vulnerable module.
	chip, err := columndisturb.OpenScaled("M8", 1, 4, 96, 192)
	if err != nil {
		log.Fatal(err)
	}
	info := chip.Info()
	fmt.Printf("characterizing %s (%s %s %s-die)\n\n", info.ID, info.Manufacturer, info.Density, info.DieRevision)

	// Step 1: subarray boundary reverse engineering.
	bounds, err := chip.SubarrayBoundaries(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RowClone boundary scan found %d subarrays; first rows: %v\n\n", len(bounds), bounds)

	// Step 2: time to first ColumnDisturb bitflip per subarray.
	for _, tempC := range []float64{85, 95} {
		chip.SetTemperature(tempC)
		fmt.Printf("time to first ColumnDisturb bitflip at %.0f °C:\n", tempC)
		for s, first := range bounds {
			agg := first + chip.RowsPerSubarray()/2
			res, err := chip.TimeToFirstBitflip(0, agg, 2)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Found {
				fmt.Printf("  subarray %d: no bitflip within 512 ms\n", s)
				continue
			}
			fmt.Printf("  subarray %d: %.1f ms (%d activations)\n", s, res.TimeMs, res.HammerCount)
		}
	}
	fmt.Println("\nhigher temperature shortens the time to the first bitflip (Obs 16).")
}
