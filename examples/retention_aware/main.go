// Retention-aware refresh under ColumnDisturb (§6.2 / Fig 23).
//
// RAIDR refreshes the few retention-weak rows every 64 ms and everything
// else every 1024 ms, recovering most of the performance lost to refresh.
// ColumnDisturb breaks the premise: under attack, *thousands* of rows
// become weak within the strong-row window. This example sweeps the
// weak-row proportion through the cycle-level memory system simulator for
// both tracker variants and shows the benefit eroding — the Bloom-filter
// variant collapses as soon as its 8 Kbit filter saturates.
package main

import (
	"fmt"
	"log"

	"columndisturb"
)

func main() {
	fractions := []float64{1e-5, 1e-4, 1e-3, 2e-3, 4e-3, 0.05, 0.2, 0.4}
	const mixes = 2

	fmt.Println("RAIDR weighted speedup normalized to no-refresh; benefit = share of the")
	fmt.Println("no-refresh headroom captured over plain 64 ms periodic refresh")
	fmt.Println()
	for _, bloom := range []bool{true, false} {
		name := "bitmap (2 Mb, exact)"
		if bloom {
			name = "Bloom filter (8 Kb, 6 hashes)"
		}
		pts, err := columndisturb.RAIDRSweep(fractions, bloom, mixes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tracker: %s\n", name)
		fmt.Printf("  %-12s %-14s %-12s %s\n", "weak frac", "effective frac", "WS/noref", "benefit")
		for _, p := range pts {
			fmt.Printf("  %-12.2g %-14.4f %-12.4f %.0f%%\n",
				p.WeakFraction, p.EffectiveWeakFrac, p.SpeedupNormalized, p.Benefit*100)
		}
		fmt.Println()
	}
	fmt.Println("ColumnDisturb pushes the weak fraction from ~1e-4 (retention only) to")
	fmt.Println("0.3-0.5: the Bloom variant's benefit is eliminated and even the exact")
	fmt.Println("bitmap loses about half of it (Takeaway 12).")
}
