// Mitigation cost analysis (§6.1).
//
// Two ways to protect a 32 Gb DDR5 chip whose cells can flip within 8 ms of
// ColumnDisturb pressure: shorten the refresh period to 8 ms (simple,
// brutal), or proactively refresh only the ~3072 victim rows sharing
// bitlines with the aggressor, spread over the 8 ms budget (PRVR). This
// example prints the throughput and energy arithmetic for both.
package main

import (
	"fmt"
	"log"

	"columndisturb"
)

func main() {
	m, err := columndisturb.AnalyzeMitigations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ColumnDisturb mitigation costs, 32 Gb DDR5 (tRFC = 410 ns)")
	fmt.Println()
	fmt.Printf("%-28s %-16s %s\n", "mechanism", "throughput loss", "refresh energy share")
	fmt.Printf("%-28s %-16s %s\n", "periodic 32 ms (baseline)",
		pct(m.BaselineThroughputLoss), pct(m.BaselineRefreshEnergy))
	fmt.Printf("%-28s %-16s %s\n", "periodic 8 ms (naive fix)",
		pct(m.ShortPeriodThroughputLoss), pct(m.ShortPeriodRefreshEnergy))
	fmt.Printf("%-28s %-16s %s\n", "PRVR (victim rows only)",
		pct(m.PRVRThroughputLoss), "-")
	fmt.Println()
	fmt.Printf("PRVR eliminates %.1f%% of the naive fix's throughput loss and %.1f%% of\n",
		m.PRVRThroughputReduction*100, m.PRVREnergyReduction*100)
	fmt.Println("its refresh energy (paper: 70.5% and 73.8%) by refreshing only the rows")
	fmt.Println("that actually share bitlines with a hammered aggressor.")
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
