// Experiments through the typed Request/Profile/Runner API (DESIGN.md §9).
//
// This example registers a custom scenario profile (a scaled-down sweep),
// runs two paper artifacts in one request on the shared worker pool with
// live per-shard progress, then re-runs one of them with an inline seed
// override — demonstrating that overrides change the configuration digest
// and therefore never alias the base profile's cached shards.
//
// The same code runs against a server: swap NewLocalRunner for
//
//	r, err := client.New("127.0.0.1:8080") // import "columndisturb/client"
//
// with `cdlab serve -addr :8080` running, and the reports come back
// byte-identical — both backends implement columndisturb.Runner and
// resolve profiles/overrides through the same path.
package main

import (
	"context"
	"fmt"
	"log"

	"columndisturb"
)

func main() {
	// A named scenario profile: the benchmark-scale base with a narrower
	// statistical sweep. Profiles compose from a base plus overrides; see
	// `cdlab profiles` for the override vocabulary.
	err := columndisturb.RegisterProfile("demo", "scaled-down demo sweep", "small",
		map[string]string{"subarrays-per-module": "2", "ttf-samples": "16"})
	if err != nil {
		log.Fatal(err)
	}

	r, err := columndisturb.NewLocalRunner(columndisturb.LocalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	// Subscribe to the event stream: every job transition and per-shard
	// completion (with cache hit/miss) arrives here.
	stop := r.Subscribe(func(ev columndisturb.Event) {
		if ev.Type == columndisturb.EventShardDone {
			fmt.Printf("  [%d/%d] %s\n", ev.Done, ev.Total, ev.Shard)
		}
	})
	defer stop()

	res, err := r.Run(context.Background(), columndisturb.Request{
		Experiments: []string{"fig6", "table1"},
		Profile:     "demo",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range res.Reports {
		fmt.Printf("\n%s(%s in %s)\n", rep.Text, rep.ID, rep.Elapsed.Round(1e6))
	}

	// The same experiment under an inline override: a different seed is a
	// different configuration digest, so nothing is shared with the run
	// above — and nothing has to be, the API expresses it directly.
	res, err = r.Run(context.Background(), columndisturb.Request{
		Experiments: []string{"fig6"},
		Profile:     "demo",
		Overrides:   map[string]string{"seed": "7"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith seed=7, Fig 6 re-renders from a decorrelated sample:\n%s", res.Reports[0].Text)
}
