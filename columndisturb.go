package columndisturb

import (
	"context"
	"fmt"
	"sort"
	"time"

	"columndisturb/internal/bender"
	"columndisturb/internal/charz"
	"columndisturb/internal/chipdb"
	"columndisturb/internal/dram"
	"columndisturb/internal/energy"
	"columndisturb/internal/experiments"
	"columndisturb/internal/memsim"
	"columndisturb/internal/mitigate"
)

// ChipInfo describes one entry of the tested-chip catalog (Table 1).
type ChipInfo struct {
	ID           string
	Manufacturer string
	Type         string // "DDR4" or "HBM2"
	Chips        int
	DieRevision  string
	Density      string
	Org          string
}

// Catalog lists the 28 DDR4 modules and 4 HBM2 chips of Table 1.
func Catalog() []ChipInfo {
	var out []ChipInfo
	for _, m := range chipdb.Modules() {
		out = append(out, ChipInfo{
			ID:           m.ID,
			Manufacturer: string(m.Mfr),
			Type:         string(m.Type),
			Chips:        m.Chips,
			DieRevision:  m.DieRev,
			Density:      m.Density,
			Org:          m.Org,
		})
	}
	return out
}

// Chip is an opened module under test: a simulated device attached to the
// testing infrastructure, addressed like the real thing (banks × rows ×
// columns, logical row addresses).
type Chip struct {
	spec chipdb.ModuleSpec
	host *bender.Host
}

// Open instantiates a catalog module as a simulated device at the 85 °C
// reference temperature. The result is deterministic per module.
func Open(id string) (*Chip, error) {
	spec, ok := chipdb.ByID(id)
	if !ok {
		return nil, fmt.Errorf("columndisturb: unknown module %q (see Catalog)", id)
	}
	mod, err := spec.Open()
	if err != nil {
		return nil, err
	}
	return &Chip{spec: spec, host: bender.NewHost(mod)}, nil
}

// OpenScaled instantiates a module on a smaller geometry (rows per
// subarray, columns) with the fault model re-calibrated so the module's
// headline vulnerability is preserved — useful for fast demos.
func OpenScaled(id string, banks, subarrays, rowsPerSubarray, cols int) (*Chip, error) {
	spec, ok := chipdb.ByID(id)
	if !ok {
		return nil, fmt.Errorf("columndisturb: unknown module %q", id)
	}
	g := dram.Geometry{
		Banks: banks, SubarraysPerBank: subarrays,
		RowsPerSubarray: rowsPerSubarray, Cols: cols, Chips: spec.Chips,
	}
	if g.Chips < 1 {
		g.Chips = 1
	}
	mod, err := spec.OpenWithGeometry(g)
	if err != nil {
		return nil, err
	}
	return &Chip{spec: spec, host: bender.NewHost(mod)}, nil
}

// Info returns the chip's catalog entry.
func (c *Chip) Info() ChipInfo {
	m := c.spec
	return ChipInfo{ID: m.ID, Manufacturer: string(m.Mfr), Type: string(m.Type),
		Chips: m.Chips, DieRevision: m.DieRev, Density: m.Density, Org: m.Org}
}

// Banks returns the number of banks.
func (c *Chip) Banks() int { return c.host.Module().Geometry().Banks }

// RowsPerBank returns the rows per bank.
func (c *Chip) RowsPerBank() int { return c.host.Module().Geometry().RowsPerBank() }

// RowsPerSubarray returns the subarray height.
func (c *Chip) RowsPerSubarray() int { return c.host.Module().Geometry().RowsPerSubarray }

// Columns returns the physical columns per row.
func (c *Chip) Columns() int { return c.host.Module().Geometry().Cols }

// SubarrayOf returns the subarray index of a row.
func (c *Chip) SubarrayOf(row int) int { return c.host.Module().Geometry().SubarrayOf(row) }

// SetTemperature retargets the temperature rig (°C).
func (c *Chip) SetTemperature(celsius float64) { c.host.SetTemperature(celsius) }

// FillRows writes the repeating byte pattern into rows [first, last].
func (c *Chip) FillRows(bank, first, last int, pattern byte) error {
	_, err := c.host.Run(bender.InitRowsProgram(bank, first, last, dram.DataPattern(pattern)))
	return err
}

// Hammer runs the paper's key access pattern — ACT(row)–tAggOn–PRE–tRP —
// for the given number of activations. tAggOn ≈ tRAS (36 ns) is classic
// hammering; large tAggOn (e.g. 70.2 µs) is pressing.
func (c *Chip) Hammer(bank, row, activations int, tAggOnNs, tRPNs float64) error {
	_, err := c.host.Run(bender.HammerProgram(bank, row, activations, tAggOnNs, tRPNs))
	return err
}

// Press keeps the aggressor row open in 70.2 µs windows for the given
// duration — the configuration that maximizes ColumnDisturb.
func (c *Chip) Press(bank, row int, durationMs float64) error {
	const tAggOn, tRP = 70_200.0, 14.0
	acts := int(durationMs * 1e6 / (tAggOn + tRP))
	if acts < 1 {
		return fmt.Errorf("columndisturb: duration %v ms shorter than one press cycle", durationMs)
	}
	return c.Hammer(bank, row, acts, tAggOn, tRP)
}

// Idle keeps the chip precharged with refresh disabled (retention test).
func (c *Chip) Idle(durationMs float64) error {
	_, err := c.host.Run(bender.RetentionProgram(durationMs))
	return err
}

// RowBitflips reads rows [first, last] and counts mismatches against the
// expected pattern, returning one count per row.
func (c *Chip) RowBitflips(bank, first, last int, expected byte) ([]int, error) {
	res, err := c.host.Run(bender.ReadRowsProgram(bank, first, last, "read"))
	if err != nil {
		return nil, err
	}
	want := make([]uint64, c.host.Module().Geometry().WordsPerRow())
	dram.FillWords(want, dram.DataPattern(expected))
	counts := make([]int, last-first+1)
	for _, rec := range res.ByTag("read") {
		counts[rec.Row-first] = dram.CountMismatches(rec.Data, want)
	}
	return counts, nil
}

// SubarrayBoundaries reverse engineers the bank's subarray layout with the
// RowClone methodology (§3.2) and returns the first row of each subarray.
func (c *Chip) SubarrayBoundaries(bank int) ([]int, error) {
	return charz.ScanSubarrayBoundaries(c.host, bank)
}

// TTFResult reports a time-to-first-bitflip search.
type TTFResult struct {
	Found       bool
	TimeMs      float64
	HammerCount int
}

// TimeToFirstBitflip runs the paper's bisection search for the minimum time
// to the first ColumnDisturb bitflip in the aggressor row's subarray, under
// the worst-case pattern (all-0 aggressor, all-1 victims, pressing), with
// the ±4-row guard band applied.
func (c *Chip) TimeToFirstBitflip(bank, aggressorRow int, repeats int) (TTFResult, error) {
	cfg := charz.DefaultTTFConfig(c.host.Module().Timing())
	if repeats > 0 {
		cfg.Repeats = repeats
	}
	res, err := charz.TimeToFirstBitflip(c.host, bank, aggressorRow, cfg)
	if err != nil {
		return TTFResult{}, err
	}
	return TTFResult{Found: res.Found, TimeMs: res.TimeMs, HammerCount: res.HammerCount}, nil
}

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID    string
	Paper string
	Title string
}

// ListExperiments enumerates every table/figure runner.
func ListExperiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Paper: e.Paper, Title: e.Title})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Report is a rendered experiment result. Text (and the report files
// `cdlab run -o` writes) carries only the deterministic rendering —
// Elapsed is metadata, so warm-cache and remote re-runs stay
// byte-identical.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	Text    string        // aligned text rendering
	Elapsed time.Duration // wall time, measured once by the service
}

// ProgressFunc receives experiment progress: done of total shards are
// complete, and label names the shard that just finished. Calls are
// serialized but may arrive in any shard order.
type ProgressFunc func(done, total int, label string)

// RunExperiment regenerates one paper artifact at the default worker bound
// (GOMAXPROCS). full=false runs the "small" profile (benchmark scale),
// full=true the "full" profile (paper breadth). Output is bit-identical
// for every worker count.
//
// Deprecated: use a Runner with a typed Request — it expresses
// multi-experiment jobs, named profiles beyond small/full, per-run
// overrides, caching and event subscription. This shim survives for
// source compatibility and delegates to the same path.
func RunExperiment(id string, full bool) (*Report, error) {
	return RunExperimentWith(context.Background(), id, full, 0, nil)
}

// RunExperimentWith is RunExperiment with an explicit worker bound
// (workers <= 0 selects GOMAXPROCS, 1 forces the serial reference path)
// and an optional progress callback. Sharded experiments produce
// byte-identical reports for every worker count: shard randomness is
// derived from per-shard keys and partial results merge in canonical
// order. Cancelling ctx aborts the run and returns an error satisfying
// errors.Is(err, ctx.Err()).
//
// Deprecated: use NewLocalRunner + Runner.Run with a Request; subscribe
// for events instead of the progress callback. This shim builds exactly
// that — a one-request LocalRunner whose shard_done events feed progress —
// so both entry points execute the identical code path.
func RunExperimentWith(ctx context.Context, id string, full bool, workers int, progress ProgressFunc) (*Report, error) {
	r, err := NewLocalRunner(LocalOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if progress != nil {
		stop := r.Subscribe(func(ev Event) {
			if ev.Type == EventShardDone {
				progress(ev.Done, ev.Total, ev.Shard)
			}
		})
		defer stop()
	}
	profile := "small"
	if full {
		profile = "full"
	}
	res, err := r.Run(ctx, Request{Experiments: []string{id}, Profile: profile})
	if err != nil {
		if res != nil && res.Errors[0] != nil {
			// Unwrap the single-experiment failure: callers of the old API
			// expect the experiment's own error, not a joined batch error.
			return nil, res.Errors[0]
		}
		return nil, err
	}
	return res.Reports[0], nil
}

// MitigationAnalysis is the §6.1 comparison of the two ColumnDisturb
// mitigations on a 32 Gb DDR5 chip.
type MitigationAnalysis struct {
	BaselineThroughputLoss    float64 // periodic 32 ms
	BaselineRefreshEnergy     float64
	ShortPeriodThroughputLoss float64 // periodic 8 ms (naive fix)
	ShortPeriodRefreshEnergy  float64
	PRVRThroughputLoss        float64
	PRVRThroughputReduction   float64 // vs the naive fix (paper: 70.5%)
	PRVREnergyReduction       float64 // vs the naive fix (paper: 73.8%)
}

// AnalyzeMitigations computes the §6.1 numbers.
func AnalyzeMitigations() (MitigationAnalysis, error) {
	idd := energy.DDR5x32Gb()
	prvr, err := mitigate.AnalyzePRVR(mitigate.DefaultPRVRConfig(), idd)
	if err != nil {
		return MitigationAnalysis{}, err
	}
	return MitigationAnalysis{
		BaselineThroughputLoss:    prvr.Baseline.ThroughputLoss,
		BaselineRefreshEnergy:     prvr.Baseline.RefreshEnergyFraction,
		ShortPeriodThroughputLoss: prvr.ShortPeriod.ThroughputLoss,
		ShortPeriodRefreshEnergy:  prvr.ShortPeriod.RefreshEnergyFraction,
		PRVRThroughputLoss:        prvr.PRVRThroughputLoss,
		PRVRThroughputReduction:   prvr.ThroughputLossReduction,
		PRVREnergyReduction:       prvr.RefreshEnergyReduction,
	}, nil
}

// RAIDRPoint is one point of a retention-aware refresh sweep.
type RAIDRPoint struct {
	WeakFraction      float64
	EffectiveWeakFrac float64 // after Bloom false positives
	SpeedupNormalized float64 // WS / WS(no refresh)
	Benefit           float64 // share of the no-refresh headroom captured
}

// RAIDRSweep evaluates RAIDR (§6.2) over the given weak-row fractions,
// averaged across `mixes` four-core workload mixes. useBloom selects the
// 8 Kb/6-hash Bloom tracker; otherwise the exact bitmap.
func RAIDRSweep(weakFractions []float64, useBloom bool, mixes int) ([]RAIDRPoint, error) {
	if mixes < 1 {
		mixes = 1
	}
	sys := memsim.DefaultSystem()
	sys.MeasureInstr = 40_000
	sys.WarmupInstr = 8_000
	mixSet := memsim.Mixes(mixes)
	seed := memsim.RunSeed(42)
	solos := make([][]float64, len(mixSet))
	for i, mix := range mixSet {
		solos[i] = make([]float64, len(mix))
		for j, w := range mix {
			ipc, err := memsim.SoloIPC(sys, w, seed)
			if err != nil {
				return nil, err
			}
			solos[i][j] = ipc
		}
	}
	avg := func(build func() (memsim.RefreshEngine, error)) (float64, error) {
		sum := 0.0
		for i, mix := range mixSet {
			eng, err := build()
			if err != nil {
				return 0, err
			}
			ws, _, err := memsim.WeightedSpeedup(sys, mix, eng, seed, solos[i])
			if err != nil {
				return 0, err
			}
			sum += ws
		}
		return sum / float64(len(mixSet)), nil
	}
	wsNone, err := avg(func() (memsim.RefreshEngine, error) { return memsim.NoRefresh(), nil })
	if err != nil {
		return nil, err
	}
	wsP64, err := avg(func() (memsim.RefreshEngine, error) { return memsim.PeriodicRefresh(sys, 64) })
	if err != nil {
		return nil, err
	}
	tracker := memsim.TrackerBitmap
	if useBloom {
		tracker = memsim.TrackerBloom
	}
	var out []RAIDRPoint
	for _, w := range weakFractions {
		rc := memsim.DefaultRAIDR(tracker)
		rc.WeakFraction = w
		var info memsim.RAIDRInfo
		ws, err := avg(func() (memsim.RefreshEngine, error) {
			eng, i, err := memsim.NewRAIDR(sys, rc)
			info = i
			return eng, err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, RAIDRPoint{
			WeakFraction:      w,
			EffectiveWeakFrac: float64(info.EffectiveWeakRows) / float64(sys.TotalRows()),
			SpeedupNormalized: ws / wsNone,
			Benefit:           memsim.BenefitFraction(ws, wsP64, wsNone),
		})
	}
	return out, nil
}
