package columndisturb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"columndisturb/internal/experiments"
)

// Stress coverage for the shared-pool concurrency seams, meant to run
// under -race (scripts/ci.sh does): the LocalRunner's Subscribe fan-out
// with slow and self-removing subscribers, and many concurrent Run calls
// interleaving on one pool. The synthetic experiment keeps shards cheap so
// the scheduling machinery — not the workload — is what's exercised.

var stressExpOnce sync.Once

// registerStressExperiment installs one tiny 4-shard experiment shared by
// the stress tests (the registry is global and rejects duplicates).
func registerStressExperiment() {
	stressExpOnce.Do(func() {
		experiments.Register(experiments.Experiment{
			ID:    "api-stress-sweep",
			Paper: "test",
			Title: "synthetic stress sweep",
			Plan: func(cfg experiments.Config) (*experiments.Plan, error) {
				plan := &experiments.Plan{}
				for i := 0; i < 4; i++ {
					i := i
					plan.Shards = append(plan.Shards, experiments.Shard{
						Label: fmt.Sprintf("stress shard %d", i),
						Run:   func(context.Context) (any, error) { return []string{fmt.Sprint(i * i)}, nil },
					})
				}
				plan.Merge = func(parts []any) (*experiments.Result, error) {
					res := &experiments.Result{ID: "api-stress-sweep", Title: "stress", Headers: []string{"value"}}
					for _, p := range parts {
						res.AddRow(p.([]string)...)
					}
					return res, nil
				}
				return plan, nil
			},
		})
	})
}

// TestSubscribeFanoutStress hammers the event fan-out from many
// concurrent jobs into many subscribers: one deliberately slow consumer,
// several that unsubscribe mid-stream (some from inside their own
// callback), and churning subscribe/unsubscribe alongside. Every
// subscriber must observe per-job Seq ordering, and nothing may deadlock
// or race.
func TestSubscribeFanoutStress(t *testing.T) {
	registerStressExperiment()
	r, err := NewLocalRunner(LocalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const subscribers = 6
	var received [subscribers]atomic.Int64
	seqCheck := func(idx int) func(Event) {
		var mu sync.Mutex
		next := map[string]int{}
		return func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if want := next[ev.Job]; ev.Seq != want {
				t.Errorf("subscriber %d: job %s seq %d, want %d", idx, ev.Job, ev.Seq, want)
			}
			next[ev.Job] = ev.Seq + 1
			received[idx].Add(1)
		}
	}

	var stops []func()
	for i := 0; i < subscribers; i++ {
		i := i
		check := seqCheck(i)
		switch {
		case i == 0:
			// The slow consumer: fan-out is synchronous, so this throttles
			// emission without ever losing ordering.
			stops = append(stops, r.Subscribe(func(ev Event) {
				time.Sleep(200 * time.Microsecond)
				check(ev)
			}))
		case i == 1:
			// Unsubscribes itself from inside its own callback mid-stream —
			// the re-entrancy case the fan-out snapshot must survive.
			var stop func()
			var n atomic.Int64
			stop = r.Subscribe(func(ev Event) {
				check(ev)
				if n.Add(1) == 10 {
					stop()
				}
			})
			stops = append(stops, stop)
		default:
			stops = append(stops, r.Subscribe(check))
		}
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// Churn subscriptions while events flow.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 200; i++ {
			stop := r.Subscribe(func(Event) {})
			stop()
		}
	}()

	const runs = 12
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(context.Background(), Request{Experiments: []string{"api-stress-sweep"}})
			if err != nil {
				t.Errorf("run: %v", err)
				return
			}
			if res.Reports[0] == nil {
				t.Error("run produced no report")
			}
		}()
	}
	wg.Wait()
	<-churnDone

	// Every still-subscribed consumer saw every event of every job:
	// 12 jobs x (queued + started + 4 shards + finished) = 84.
	const wantEvents = runs * 7
	for i := 0; i < subscribers; i++ {
		if i == 1 {
			continue // unsubscribed itself after 10
		}
		if got := received[i].Load(); got != wantEvents {
			t.Errorf("subscriber %d received %d events, want %d", i, got, wantEvents)
		}
	}
	// The self-unsubscriber saw its 10, plus at most the stragglers that
	// were already snapshotted by concurrent emissions when stop ran —
	// unsubscribing prevents future snapshots, it does not recall
	// in-flight ones.
	if got := received[1].Load(); got < 10 || got == wantEvents {
		t.Errorf("self-unsubscribing consumer received %d events, want >= 10 and an early stop", got)
	}
}

// TestConcurrentRunsSharedPoolStress drives many concurrent Run calls —
// mixed single- and multi-experiment requests, some with overrides so
// config resolution runs concurrently too — through ONE shared pool, and
// checks every report against a serial reference run (the determinism
// contract under contention).
func TestConcurrentRunsSharedPoolStress(t *testing.T) {
	registerStressExperiment()
	ref, err := NewLocalRunner(LocalOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Run(context.Background(), Request{Experiments: []string{"api-stress-sweep"}})
	ref.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := res.Reports[0].Text

	r, err := NewLocalRunner(LocalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const callers = 24
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := Request{Experiments: []string{"api-stress-sweep"}}
			if i%3 == 0 {
				req.Experiments = []string{"api-stress-sweep", "api-stress-sweep"}
			}
			if i%4 == 0 {
				req.Overrides = map[string]string{"seed": "1"} // resolves to the same config
			}
			out, err := r.Run(context.Background(), req)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			for _, rep := range out.Reports {
				if rep.Text != want {
					t.Errorf("caller %d: report diverged under contention:\n%s", i, rep.Text)
				}
			}
		}()
	}
	wg.Wait()
}
