// Command promcheck validates a Prometheus text-format (0.0.4) metrics
// export — CI's gate for the /v1/metrics endpoint:
//
//	go run ./scripts/promcheck -url http://127.0.0.1:8080/v1/metrics \
//	    -require cdlab_jobs_total,cdlab_shards_total
//	curl -s host/v1/metrics | go run ./scripts/promcheck -require ...
//
// Structural checks cover the whole export: every sample line parses as
// `name[{labels}] value` with a float value, every sampled family is
// declared by preceding # HELP/# TYPE comments, counters and gauges never
// repeat a (name, labels) sample, and every histogram carries its _sum,
// _count and a terminal +Inf bucket whose cumulative counts are monotone
// and agree with _count. -require then asserts the presence of named
// families (comma-separated), so a scrape that silently lost a subsystem's
// metrics fails CI even though it is well-formed. -dump tees the raw
// export to a file so shell assertions can inspect individual sample
// values after the structural gate passes. Exits non-zero with a line
// number on the first violation.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// histState accumulates one histogram series' bucket samples, keyed by its
// non-le labels.
type histState struct {
	buckets map[string][]bucket // labels (sans le) -> le-ordered samples
	sum     map[string]bool
	count   map[string]float64
}

type bucket struct {
	le    float64
	count float64
}

func main() {
	url := flag.String("url", "", "fetch the export from this URL instead of stdin")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	dump := flag.String("dump", "", "also write the raw export to this file (for CI assertions on sample values)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *url != "" {
		hc := &http.Client{Timeout: 30 * time.Second}
		resp, err := hc.Get(*url)
		if err != nil {
			fail("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("GET %s: %s", *url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			fail("GET %s: content type %q, want text/plain; version=0.0.4", *url, ct)
		}
		in = resp.Body
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = io.TeeReader(in, f)
	}

	families, samples, err := check(in)
	if err != nil {
		fail("%v", err)
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" && !families[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("export is well-formed but missing required families: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("promcheck: OK (%d families, %d samples)\n", len(families), samples)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}

// check validates the export structurally and returns the set of declared
// families plus the sample count.
func check(in io.Reader) (map[string]bool, int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	families := map[string]bool{} // declared by # TYPE
	kinds := map[string]string{}  // family -> counter|gauge|histogram
	seen := map[string]bool{}     // scalar (name, labels) dedup
	hists := map[string]*histState{}
	line, samples := 0, 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, 0, fmt.Errorf("line %d: malformed TYPE comment %q", line, text)
			}
			families[fields[2]] = true
			kinds[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			return nil, 0, fmt.Errorf("line %d: malformed sample line %q", line, text)
		}
		name, labels := m[1], m[2]
		value, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: unparseable value in %q: %v", line, text, err)
		}
		samples++
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, s); base != name && kinds[base] == "histogram" {
				family, suffix = base, s
				break
			}
		}
		if !families[family] {
			return nil, 0, fmt.Errorf("line %d: sample %q has no # TYPE declaration", line, name)
		}
		switch kinds[family] {
		case "counter", "gauge":
			key := name + labels
			if seen[key] {
				return nil, 0, fmt.Errorf("line %d: duplicate sample %s%s", line, name, labels)
			}
			seen[key] = true
			if kinds[family] == "counter" && value < 0 {
				return nil, 0, fmt.Errorf("line %d: negative counter %s%s = %g", line, name, labels, value)
			}
		case "histogram":
			h := hists[family]
			if h == nil {
				h = &histState{buckets: map[string][]bucket{}, sum: map[string]bool{}, count: map[string]float64{}}
				hists[family] = h
			}
			switch suffix {
			case "_bucket":
				le, rest, err := splitLE(labels)
				if err != nil {
					return nil, 0, fmt.Errorf("line %d: %s: %v", line, text, err)
				}
				h.buckets[rest] = append(h.buckets[rest], bucket{le: le, count: value})
			case "_sum":
				h.sum[labels] = true
			case "_count":
				h.count[labels] = value
			default:
				return nil, 0, fmt.Errorf("line %d: bare sample %q of histogram family %s", line, name, family)
			}
		default:
			return nil, 0, fmt.Errorf("line %d: family %s has unknown kind %q", line, family, kinds[family])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if samples == 0 {
		return nil, 0, fmt.Errorf("empty input: no samples to check")
	}
	for family, h := range hists {
		for labels, bs := range h.buckets {
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				return nil, 0, fmt.Errorf("histogram %s%s has no +Inf bucket", family, labels)
			}
			for i := 1; i < len(bs); i++ {
				if bs[i].count < bs[i-1].count {
					return nil, 0, fmt.Errorf("histogram %s%s buckets not cumulative at le=%g", family, labels, bs[i].le)
				}
			}
			if !h.sum[labels] {
				return nil, 0, fmt.Errorf("histogram %s%s has buckets but no _sum", family, labels)
			}
			count, ok := h.count[labels]
			if !ok {
				return nil, 0, fmt.Errorf("histogram %s%s has buckets but no _count", family, labels)
			}
			if count != last.count {
				return nil, 0, fmt.Errorf("histogram %s%s _count %g disagrees with +Inf bucket %g", family, labels, count, last.count)
			}
		}
	}
	return families, samples, nil
}

// splitLE extracts the le label from a bucket's label set and returns the
// remaining labels as the series key.
func splitLE(labels string) (float64, string, error) {
	if len(labels) < 2 {
		return 0, "", fmt.Errorf("bucket sample without labels")
	}
	var le string
	var rest []string
	for _, pair := range splitLabelPairs(labels[1 : len(labels)-1]) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return 0, "", fmt.Errorf("malformed label pair %q", pair)
		}
		unq, err := strconv.Unquote(v)
		if err != nil {
			return 0, "", fmt.Errorf("malformed label value %s: %v", pair, err)
		}
		if k == "le" {
			le = unq
			continue
		}
		rest = append(rest, pair)
	}
	if le == "" {
		return 0, "", fmt.Errorf("bucket sample without le label")
	}
	f, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, "", fmt.Errorf("unparseable le %q: %v", le, err)
	}
	// A bucket whose only label was le keys the same series as bare
	// _sum/_count samples, which carry no label braces at all.
	if len(rest) == 0 {
		return f, "", nil
	}
	return f, "{" + strings.Join(rest, ",") + "}", nil
}

// splitLabelPairs splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var pairs []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\' && inQuote:
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			pairs = append(pairs, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		pairs = append(pairs, cur.String())
	}
	return pairs
}
