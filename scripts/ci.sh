#!/usr/bin/env bash
# CI gate for every PR: build, vet, race-enabled tests, and a compile-and-
# run pass over every benchmark (one iteration each, so the experiment
# runners stay executable without turning CI into a perf run).
#
# Usage: scripts/ci.sh [extra go-test flags...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race "$@" ./...

echo "== benchmarks (1 iteration) =="
go test -run xxx -bench . -benchtime 1x "$@" ./...

echo "CI OK"
