#!/usr/bin/env bash
# CI gate for every PR: build, vet, race-enabled tests, and a compile-and-
# run pass over every benchmark (one iteration each, so the experiment
# runners stay executable without turning CI into a perf run).
#
# Usage: scripts/ci.sh [extra go-test flags...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race "$@" ./...

echo "== bitset: focused vet + race (hot-loop membership sets) =="
# The dense bitsets back every per-readout-bit membership probe in the
# characterization pipeline and are shared read-only across shard
# goroutines; keep an explicit vet + race pass on them even if the
# package lists above are ever narrowed.
go vet ./internal/bitset
go test -race -count=2 ./internal/bitset

echo "== wal decoder fuzz (committed corpus + 5s of new inputs) =="
go test -run '^$' -fuzz FuzzReplaySegment -fuzztime 5s ./internal/wal

echo "== benchmarks (1 iteration) =="
go test -run xxx -bench . -benchtime 1x "$@" ./...

echo "== benchjson: perf-trajectory snapshot =="
# Every revision can emit a parseable BENCH_<rev>.json; the check gate
# fails if a trajectory benchmark (RunAll{Serial,Parallel,WarmCache})
# stops emitting. Commit the snapshot on tentpole PRs to grow the
# tracked perf history.
rev=$(git rev-parse --short HEAD)
go run ./scripts/benchjson -out "BENCH_${rev}.json"
go run ./scripts/benchjson -check "BENCH_${rev}.json"

echo "== cdlab smoke: shared pool + shard cache =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/cdlab" ./cmd/cdlab

# Cold sweep populates the cache; the warm sweep must be served entirely
# from it (no "cached":false shard event) and write byte-identical reports.
"$tmp/cdlab" run all -j 2 -o "$tmp/out1" -cache-dir "$tmp/cache" > /dev/null
"$tmp/cdlab" run all -j 2 -o "$tmp/out2" -cache-dir "$tmp/cache" -json \
    > "$tmp/events-all.jsonl" 2> "$tmp/warm-stderr.txt"
if grep -q '"cached":false' "$tmp/events-all.jsonl"; then
    echo "warm cdlab run recomputed shards:" >&2
    grep '"cached":false' "$tmp/events-all.jsonl" | head -5 >&2
    exit 1
fi
grep -q '"cached":true' "$tmp/events-all.jsonl"
grep -q ', 0 misses' "$tmp/warm-stderr.txt"
diff -r "$tmp/out1" "$tmp/out2"

echo "== cdlab smoke: JSONL event schema =="
"$tmp/cdlab" run fig6 -json | go run ./scripts/eventcheck
go run ./scripts/eventcheck < "$tmp/events-all.jsonl"

echo "== cdlab smoke: unknown IDs rejected before any work =="
rc=0
"$tmp/cdlab" run fig6 no-such-experiment -o "$tmp/should-not-exist" 2> "$tmp/unknown-err.txt" || rc=$?
[ "$rc" -eq 2 ] || { echo "unknown-ID exit status $rc, want 2" >&2; exit 1; }
grep -q no-such-experiment "$tmp/unknown-err.txt"
[ ! -e "$tmp/should-not-exist" ] || { echo "work started despite unknown ID" >&2; exit 1; }

echo "== cdlab smoke: client-serve roundtrip =="
port=18517
"$tmp/cdlab" serve -addr "127.0.0.1:$port" -j 2 -cache-dir "$tmp/serve-cache" \
    2> "$tmp/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done

# A remote run must render byte-identical reports to the same request run
# locally (same profile and overrides resolve to the same config digest).
"$tmp/cdlab" run fig6 table1 -remote "127.0.0.1:$port" -set seed=7 -o "$tmp/remote-out"
"$tmp/cdlab" run fig6 table1 -set seed=7 -o "$tmp/local-out" -cache-dir "$tmp/local-cache" > /dev/null
diff -r "$tmp/remote-out" "$tmp/local-out"

# A repeat remote run is served entirely from the server's shard cache
# (zero recomputation) and its /v1 event stream passes the schema gate.
"$tmp/cdlab" run fig6 table1 -remote "127.0.0.1:$port" -set seed=7 -json -o "$tmp/remote-out2" \
    > "$tmp/events-remote.jsonl" 2> /dev/null
if grep -q '"cached":false' "$tmp/events-remote.jsonl"; then
    echo "warm remote run recomputed shards:" >&2
    grep '"cached":false' "$tmp/events-remote.jsonl" | head -5 >&2
    exit 1
fi
grep -q '"cached":true' "$tmp/events-remote.jsonl"
grep -q '"v":1' "$tmp/events-remote.jsonl"
go run ./scripts/eventcheck < "$tmp/events-remote.jsonl"
diff -r "$tmp/remote-out" "$tmp/remote-out2"
kill "$serve_pid"

echo "== cdlab smoke: distributed dispatch (two workers, kill one mid-run) =="
dport=18523
# -no-local-shards makes the serve process a pure scheduler: every shard
# MUST flow through a worker lease, so this smoke cannot silently pass on
# local execution. The short lease TTL keeps the kill-recovery fast.
"$tmp/cdlab" serve -addr "127.0.0.1:$dport" -j 2 -no-local-shards -lease-ttl 2s \
    -cache-dir "$tmp/dist-cache" 2> "$tmp/dist-serve.log" &
dist_pid=$!
"$tmp/cdlab" worker -connect "127.0.0.1:$dport" -j 2 -name smoke-w1 2> "$tmp/dist-w1.log" &
w1_pid=$!
disown "$w1_pid" # silences bash's "Killed" report for the deliberate SIGKILL below
"$tmp/cdlab" worker -connect "127.0.0.1:$dport" -j 2 -name smoke-w2 2> "$tmp/dist-w2.log" &
w2_pid=$!
trap 'kill "$serve_pid" "$dist_pid" "$w1_pid" "$w2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$dport") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done

# A sharded experiment fanned across two workers renders byte-identical
# reports to a pure-local serial run, every shard event names its worker,
# and the stream passes the schema gate (-require-worker: with
# -no-local-shards an unattributed computed shard is a scheduler bug).
"$tmp/cdlab" run fig6 fig11 table1 -remote "127.0.0.1:$dport" -json -o "$tmp/dist-out" \
    > "$tmp/events-dist.jsonl" 2> /dev/null
"$tmp/cdlab" run fig6 fig11 table1 -j 1 -o "$tmp/dist-local-out" > /dev/null
diff -r "$tmp/dist-out" "$tmp/dist-local-out"
grep -q '"worker":"' "$tmp/events-dist.jsonl"
if grep '"type":"shard_done"' "$tmp/events-dist.jsonl" | grep -v '"worker":"' | grep -q .; then
    echo "shards executed without a worker attribution despite -no-local-shards:" >&2
    grep '"type":"shard_done"' "$tmp/events-dist.jsonl" | grep -v '"worker":"' | head -3 >&2
    exit 1
fi
go run ./scripts/eventcheck -require-worker < "$tmp/events-dist.jsonl"

echo "== cdlab smoke: trace timeline of a settled distributed job =="
# Every job of the sweep must replay a complete span set: `cdlab trace`
# exits non-zero if a settled job has spans that never closed, and the
# rendering must attribute shards to workers and name the critical path.
for job in $(sed -n 's/.*"type":"job_queued".*"job":"\([^"]*\)".*/\1/p' "$tmp/events-dist.jsonl"); do
    "$tmp/cdlab" trace "$job" -remote "127.0.0.1:$dport" > "$tmp/trace-$job.txt"
done
grep -q 'critical path:' "$tmp/trace-$job.txt"
grep -q 'workers:' "$tmp/trace-$job.txt"
grep -q 'leased worker=' "$tmp/trace-$job.txt"

# The workers listing sees both attached workers, with completion stats
# from the sweep that just ran.
"$tmp/cdlab" workers -remote "127.0.0.1:$dport" > "$tmp/workers.txt"
grep -q smoke-w1 "$tmp/workers.txt"
grep -q smoke-w2 "$tmp/workers.txt"

# Kill one worker mid-run (SIGKILL: no dereg, the server must detect the
# silence and requeue its leases). The run must still complete with
# reports byte-identical to the earlier pure-local sweep. -no-cache keeps
# every shard a real computation, and the kill waits until BOTH worker
# identities have completed shards in this run's event stream — so the
# SIGKILL provably lands on a participating worker, not an idle one.
"$tmp/cdlab" run all -remote "127.0.0.1:$dport" -no-cache -json -o "$tmp/dist-out2" \
    > "$tmp/events-dist2.jsonl" 2> "$tmp/dist-run2.log" &
dist_run_pid=$!
for _ in $(seq 1 300); do
    if grep -q '"worker":"w1"' "$tmp/events-dist2.jsonl" 2>/dev/null \
        && grep -q '"worker":"w2"' "$tmp/events-dist2.jsonl" 2>/dev/null; then break; fi
    sleep 0.1
done
# Both dispatch identities must have completed shards: process→ID mapping
# is a registration race, so only "both participated" guarantees the
# SIGKILL below lands on a participating worker.
{ grep -q '"worker":"w1"' "$tmp/events-dist2.jsonl" && grep -q '"worker":"w2"' "$tmp/events-dist2.jsonl"; } || {
    echo "kill smoke: both workers never took shards; recovery path untested" >&2; exit 1; }

echo "== cdlab smoke: /v1/metrics scrape mid-run =="
# Scraped while the sweep is still executing: the export must be
# well-formed Prometheus text carrying every serve/dispatch family even
# under concurrent updates (the HTTP-level counterpart of the registry's
# -race tests).
go run ./scripts/promcheck -url "http://127.0.0.1:$dport/v1/metrics" \
    -require cdlab_jobs_total,cdlab_jobs_active,cdlab_jobs_pending,cdlab_job_ms,cdlab_shard_elapsed_ms,cdlab_shards_total,cdlab_backend_workers,cdlab_lease_wait_ms,cdlab_lease_to_complete_ms,cdlab_worker_tasks_total,cdlab_dispatch_queue_depth,cdlab_dispatch_workers,cdlab_cache_hits_total,cdlab_cache_mem_bytes,cdlab_jobs_coalesced_total,cdlab_jobs_recovered_total

kill -9 "$w1_pid" 2>/dev/null || true
wait "$dist_run_pid"
diff -r "$tmp/dist-out2" "$tmp/out1"
go run ./scripts/eventcheck -require-worker < "$tmp/events-dist2.jsonl"

echo "== cdlab smoke: formerly-serial experiments are multi-shard + warm-distributed zero-recompute =="
# These experiments used to run through the legacy serial Run path as one
# opaque pseudo-shard. Now they are real plans: every shard leases to the
# surviving worker, each experiment emits MULTIPLE shard events, and a
# warm re-run against the server's shard cache recomputes zero shards
# while writing byte-identical reports.
formerly_serial="fig21 fig22 fig23 sec61 ttf ablation-f ablation-bitline"
"$tmp/cdlab" run $formerly_serial -remote "127.0.0.1:$dport" -json -o "$tmp/fs-out1" \
    > "$tmp/events-fs1.jsonl" 2> /dev/null
for id in $formerly_serial; do
    n=$(grep '"type":"shard_done"' "$tmp/events-fs1.jsonl" | grep -c "\"experiment\":\"$id\"" || true)
    if [ "$n" -lt 2 ]; then
        echo "$id emitted $n shard events; expected a multi-shard plan" >&2
        exit 1
    fi
done
"$tmp/cdlab" run $formerly_serial -remote "127.0.0.1:$dport" -json -o "$tmp/fs-out2" \
    > "$tmp/events-fs2.jsonl" 2> /dev/null
if grep -q '"cached":false' "$tmp/events-fs2.jsonl"; then
    echo "warm distributed re-run recomputed formerly-serial shards:" >&2
    grep '"cached":false' "$tmp/events-fs2.jsonl" | head -5 >&2
    exit 1
fi
grep -q '"cached":true' "$tmp/events-fs2.jsonl"
diff -r "$tmp/fs-out1" "$tmp/fs-out2"
go run ./scripts/eventcheck < "$tmp/events-fs2.jsonl"
kill "$w2_pid" "$dist_pid" 2>/dev/null || true

echo "== cdlab smoke: WAL crash recovery (SIGKILL mid-run, restart, resume) =="
wport=18529
"$tmp/cdlab" serve -addr "127.0.0.1:$wport" -j 2 -cache-dir "$tmp/wal-cache" \
    2> "$tmp/wal-serve1.log" &
wal1_pid=$!
disown "$wal1_pid" # silences bash's "Killed" report for the deliberate SIGKILL below
trap 'kill "$serve_pid" "$dist_pid" "$w1_pid" "$w2_pid" "$wal1_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$wport") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done

# A patient client (big reconnect budget) sweeps the catalog; once at least
# three shards have genuinely computed — their results are in the on-disk
# cache, their settle records in the WAL — the server is SIGKILLed with the
# sweep still in flight.
"$tmp/cdlab" run all -remote "127.0.0.1:$wport" -retries 200 -json -o "$tmp/wal-out" \
    > "$tmp/events-wal.jsonl" 2> "$tmp/wal-run.log" &
wal_run_pid=$!
for _ in $(seq 1 300); do
    n=$(grep -c '"cached":false' "$tmp/events-wal.jsonl" 2>/dev/null || true)
    [ "${n:-0}" -ge 3 ] && break
    sleep 0.1
done
[ "${n:-0}" -ge 3 ] || { echo "restart smoke: sweep never computed 3 shards" >&2; exit 1; }
kill -9 "$wal1_pid"

# A fresh serve on the same directories replays the journal: interrupted
# jobs requeue under their ORIGINAL IDs, so the still-running client rides
# its reconnect loop across the restart and must finish with reports
# byte-identical to the uninterrupted local sweep, streaming gap-free
# events (eventcheck would flag a Seq discontinuity or a re-keyed job).
"$tmp/cdlab" serve -addr "127.0.0.1:$wport" -j 2 -cache-dir "$tmp/wal-cache" \
    2> "$tmp/wal-serve2.log" &
wal2_pid=$!
trap 'kill "$serve_pid" "$dist_pid" "$w1_pid" "$w2_pid" "$wal1_pid" "$wal2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait "$wal_run_pid"
grep -q 'wal: recovered job' "$tmp/wal-serve2.log"
diff -r "$tmp/wal-out" "$tmp/out1"
go run ./scripts/eventcheck < "$tmp/events-wal.jsonl"
# Recovery must have reused settled shards, not recomputed the sweep:
# the recovered server served at least one shard from the persistent
# cache (the client can't witness this — its `from=N` resume window skips
# the re-emitted cache-hit events — so ask the server's metrics).
go run ./scripts/promcheck -url "http://127.0.0.1:$wport/v1/metrics" -dump "$tmp/wal-metrics.txt" \
    -require cdlab_jobs_recovered_total,cdlab_wal_records_total
cachehits=$(sed -n 's/^cdlab_shards_total{source="cache"} \([0-9]*\).*/\1/p' "$tmp/wal-metrics.txt")
[ "${cachehits:-0}" -ge 1 ] || {
    echo "recovered server recomputed every shard (no cache-source shards in metrics)" >&2
    exit 1
}
recovered=$(sed -n 's/^cdlab_jobs_recovered_total \([0-9]*\).*/\1/p' "$tmp/wal-metrics.txt")
[ "${recovered:-0}" -ge 1 ] || { echo "cdlab_jobs_recovered_total=$recovered after a crash restart" >&2; exit 1; }

# SIGTERM drains the recovered server gracefully: exit 0, a clean-shutdown
# record in the WAL, and the next serve folds it (resurrecting the done
# jobs cache-hot rather than requeueing work).
kill -TERM "$wal2_pid"
wait "$wal2_pid"
grep -q 'cdlab: clean shutdown complete' "$tmp/wal-serve2.log"
"$tmp/cdlab" serve -addr "127.0.0.1:$wport" -j 2 -cache-dir "$tmp/wal-cache" \
    2> "$tmp/wal-serve3.log" &
wal3_pid=$!
trap 'kill "$serve_pid" "$dist_pid" "$w1_pid" "$w2_pid" "$wal1_pid" "$wal2_pid" "$wal3_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$wport") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done
grep -q 'clean_shutdown=true' "$tmp/wal-serve3.log"
kill "$wal3_pid" 2>/dev/null || true

echo "== cdlab smoke: single-flight coalescing (concurrent identical sweeps) =="
cport=18537
"$tmp/cdlab" serve -addr "127.0.0.1:$cport" -j 2 -cache-dir "$tmp/co-cache" \
    2> "$tmp/co-serve.log" &
co_pid=$!
trap 'kill "$serve_pid" "$dist_pid" "$w1_pid" "$w2_pid" "$wal1_pid" "$wal2_pid" "$wal3_pid" "$co_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$cport") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done

# Two identical cold sweeps race each other. Each client still gets its own
# complete event stream and report set, but the shard work happens ONCE:
# every computed shard either coalesced (second job attached to the first
# job's live flight) or cache-hit (second job arrived after the flight
# settled) — never recomputed.
"$tmp/cdlab" run all -remote "127.0.0.1:$cport" -json -o "$tmp/co-outA" \
    > "$tmp/events-coA.jsonl" 2> /dev/null &
coA_pid=$!
"$tmp/cdlab" run all -remote "127.0.0.1:$cport" -json -o "$tmp/co-outB" \
    > "$tmp/events-coB.jsonl" 2> /dev/null &
coB_pid=$!
wait "$coA_pid" "$coB_pid"
diff -r "$tmp/co-outA" "$tmp/out1"
diff -r "$tmp/co-outB" "$tmp/out1"
go run ./scripts/eventcheck < "$tmp/events-coA.jsonl"
go run ./scripts/eventcheck < "$tmp/events-coB.jsonl"

# The exactly-once proof lives in the metrics: one client's stream carries
# one shard_done per catalog shard, and the server's local-execution
# counter must equal that — two full sweeps, each shard computed once.
# The scrape also gates the new WAL/coalescing families.
shards=$(grep -c '"type":"shard_done"' "$tmp/events-coA.jsonl")
go run ./scripts/promcheck -url "http://127.0.0.1:$cport/v1/metrics" -dump "$tmp/co-metrics.txt" \
    -require cdlab_jobs_coalesced_total,cdlab_jobs_recovered_total,cdlab_wal_records_total,cdlab_wal_bytes_total,cdlab_wal_syncs_total,cdlab_wal_segments
grep -q "^cdlab_shards_total{source=\"local\"} $shards\$" "$tmp/co-metrics.txt" || {
    echo "coalesced sweeps recomputed shards (want exactly $shards local executions):" >&2
    grep '^cdlab_shards_total' "$tmp/co-metrics.txt" >&2
    exit 1
}
coalesced=$(sed -n 's/^cdlab_jobs_coalesced_total \([0-9]*\).*/\1/p' "$tmp/co-metrics.txt")
[ "${coalesced:-0}" -ge 1 ] || {
    echo "concurrent identical sweeps never coalesced (cdlab_jobs_coalesced_total=$coalesced)" >&2
    exit 1
}
kill "$co_pid" 2>/dev/null || true

echo "== cdlab smoke: bearer-token auth gates mutations, reads stay open =="
aport=18541
"$tmp/cdlab" serve -addr "127.0.0.1:$aport" -j 2 -auth-token smoke-secret \
    2> "$tmp/auth-serve.log" &
auth_pid=$!
trap 'kill "$serve_pid" "$dist_pid" "$w1_pid" "$w2_pid" "$wal1_pid" "$wal2_pid" "$wal3_pid" "$co_pid" "$auth_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$aport") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done
rc=0
"$tmp/cdlab" run fig6 -remote "127.0.0.1:$aport" -o "$tmp/auth-denied" \
    2> "$tmp/auth-err.txt" || rc=$?
[ "$rc" -ne 0 ] || { echo "tokenless run against an auth-token server succeeded" >&2; exit 1; }
grep -qi 'bearer token' "$tmp/auth-err.txt"
[ -z "$(ls -A "$tmp/auth-denied" 2>/dev/null)" ] || { echo "reports written despite missing token" >&2; exit 1; }
"$tmp/cdlab" run fig6 -remote "127.0.0.1:$aport" -token smoke-secret -o "$tmp/auth-out" > /dev/null
# Metric scrapers need no secrets: the tokenless promcheck GET must pass.
go run ./scripts/promcheck -url "http://127.0.0.1:$aport/v1/metrics" -require cdlab_jobs_total
kill "$auth_pid" 2>/dev/null || true

echo "CI OK"
