#!/usr/bin/env bash
# CI gate for every PR: build, vet, race-enabled tests, and a compile-and-
# run pass over every benchmark (one iteration each, so the experiment
# runners stay executable without turning CI into a perf run).
#
# Usage: scripts/ci.sh [extra go-test flags...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race "$@" ./...

echo "== benchmarks (1 iteration) =="
go test -run xxx -bench . -benchtime 1x "$@" ./...

echo "== cdlab smoke: shared pool + shard cache =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/cdlab" ./cmd/cdlab

# Cold sweep populates the cache; the warm sweep must be served entirely
# from it (no "cached":false shard event) and write byte-identical reports.
"$tmp/cdlab" run all -j 2 -o "$tmp/out1" -cache-dir "$tmp/cache" > /dev/null
"$tmp/cdlab" run all -j 2 -o "$tmp/out2" -cache-dir "$tmp/cache" -json \
    > "$tmp/events-all.jsonl" 2> "$tmp/warm-stderr.txt"
if grep -q '"cached":false' "$tmp/events-all.jsonl"; then
    echo "warm cdlab run recomputed shards:" >&2
    grep '"cached":false' "$tmp/events-all.jsonl" | head -5 >&2
    exit 1
fi
grep -q '"cached":true' "$tmp/events-all.jsonl"
grep -q ', 0 misses' "$tmp/warm-stderr.txt"
diff -r "$tmp/out1" "$tmp/out2"

echo "== cdlab smoke: JSONL event schema =="
"$tmp/cdlab" run fig6 -json | go run ./scripts/eventcheck
go run ./scripts/eventcheck < "$tmp/events-all.jsonl"

echo "CI OK"
