#!/usr/bin/env bash
# CI gate for every PR: build, vet, race-enabled tests, and a compile-and-
# run pass over every benchmark (one iteration each, so the experiment
# runners stay executable without turning CI into a perf run).
#
# Usage: scripts/ci.sh [extra go-test flags...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race "$@" ./...

echo "== benchmarks (1 iteration) =="
go test -run xxx -bench . -benchtime 1x "$@" ./...

echo "== cdlab smoke: shared pool + shard cache =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/cdlab" ./cmd/cdlab

# Cold sweep populates the cache; the warm sweep must be served entirely
# from it (no "cached":false shard event) and write byte-identical reports.
"$tmp/cdlab" run all -j 2 -o "$tmp/out1" -cache-dir "$tmp/cache" > /dev/null
"$tmp/cdlab" run all -j 2 -o "$tmp/out2" -cache-dir "$tmp/cache" -json \
    > "$tmp/events-all.jsonl" 2> "$tmp/warm-stderr.txt"
if grep -q '"cached":false' "$tmp/events-all.jsonl"; then
    echo "warm cdlab run recomputed shards:" >&2
    grep '"cached":false' "$tmp/events-all.jsonl" | head -5 >&2
    exit 1
fi
grep -q '"cached":true' "$tmp/events-all.jsonl"
grep -q ', 0 misses' "$tmp/warm-stderr.txt"
diff -r "$tmp/out1" "$tmp/out2"

echo "== cdlab smoke: JSONL event schema =="
"$tmp/cdlab" run fig6 -json | go run ./scripts/eventcheck
go run ./scripts/eventcheck < "$tmp/events-all.jsonl"

echo "== cdlab smoke: unknown IDs rejected before any work =="
rc=0
"$tmp/cdlab" run fig6 no-such-experiment -o "$tmp/should-not-exist" 2> "$tmp/unknown-err.txt" || rc=$?
[ "$rc" -eq 2 ] || { echo "unknown-ID exit status $rc, want 2" >&2; exit 1; }
grep -q no-such-experiment "$tmp/unknown-err.txt"
[ ! -e "$tmp/should-not-exist" ] || { echo "work started despite unknown ID" >&2; exit 1; }

echo "== cdlab smoke: client-serve roundtrip =="
port=18517
"$tmp/cdlab" serve -addr "127.0.0.1:$port" -j 2 -cache-dir "$tmp/serve-cache" \
    2> "$tmp/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then exec 3>&-; break; fi
    sleep 0.1
done

# A remote run must render byte-identical reports to the same request run
# locally (same profile and overrides resolve to the same config digest).
"$tmp/cdlab" run fig6 table1 -remote "127.0.0.1:$port" -set seed=7 -o "$tmp/remote-out"
"$tmp/cdlab" run fig6 table1 -set seed=7 -o "$tmp/local-out" -cache-dir "$tmp/local-cache" > /dev/null
diff -r "$tmp/remote-out" "$tmp/local-out"

# A repeat remote run is served entirely from the server's shard cache
# (zero recomputation) and its /v1 event stream passes the schema gate.
"$tmp/cdlab" run fig6 table1 -remote "127.0.0.1:$port" -set seed=7 -json -o "$tmp/remote-out2" \
    > "$tmp/events-remote.jsonl" 2> /dev/null
if grep -q '"cached":false' "$tmp/events-remote.jsonl"; then
    echo "warm remote run recomputed shards:" >&2
    grep '"cached":false' "$tmp/events-remote.jsonl" | head -5 >&2
    exit 1
fi
grep -q '"cached":true' "$tmp/events-remote.jsonl"
grep -q '"v":1' "$tmp/events-remote.jsonl"
go run ./scripts/eventcheck < "$tmp/events-remote.jsonl"
diff -r "$tmp/remote-out" "$tmp/remote-out2"
kill "$serve_pid"

echo "CI OK"
