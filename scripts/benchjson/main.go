// Command benchjson snapshots the repo's performance trajectory as a
// machine-readable JSON file (CI's perf-tracking gate):
//
//	go run ./scripts/benchjson -out BENCH_$(git rev-parse --short HEAD).json
//	go run ./scripts/benchjson -check BENCH_abc1234.json
//
// Write mode runs the root package's sweep benchmarks — the three
// RunAll trajectory points (serial reference, parallel sweep, warm-cache
// replay floor) plus the inner-loop micro benchmarks of the core
// machinery — at one iteration each and records ns/op per benchmark,
// keyed by the git revision. Committing one BENCH_<rev>.json per tentpole
// revision turns `git log --oneline BENCH_*.json` into the perf history.
//
// Check mode validates a snapshot without running anything: schema
// version, a non-empty revision, positive ns/op values, and the presence
// of all three RunAll trajectory benchmarks. CI writes a fresh snapshot
// and immediately checks it, so a benchmark that stops emitting (renamed,
// deleted, or failing to build) breaks the build rather than silently
// dropping out of the trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// snapshot is the BENCH_<rev>.json schema.
type snapshot struct {
	Schema     int                `json:"schema"`
	Rev        string             `json:"rev"`
	Go         string             `json:"go"`
	Date       string             `json:"date"`
	Benchtime  string             `json:"benchtime"`
	Maxprocs   int                `json:"maxprocs,omitempty"` // GOMAXPROCS when the snapshot ran
	Benchmarks map[string]float64 `json:"benchmarks"`         // name -> ns/op
}

const schemaVersion = 1

// required are the trajectory benchmarks every snapshot must carry; the
// inner-loop micro benchmarks may come and go, these three may not.
var required = []string{
	"BenchmarkRunAllSerial",
	"BenchmarkRunAllParallel",
	"BenchmarkRunAllWarmCache",
}

// benchRegexp selects the sweep trajectory plus the inner-loop micro
// benchmarks, skipping the per-artifact figure benchmarks (those are
// subsets of RunAll and would double CI's bench wall time).
const benchRegexp = "^Benchmark(RunAll|Engine|DeviceReadRow|Hammer512ms|" +
	"StatisticalSubarray|TTFSample|SECDecode|Memsim|RowCloneScan|" +
	"ShardSplitPlan|DiffReadsFiltered|CouplingEval)"

// resultLine matches `go test -bench` output such as
// "BenchmarkRunAllSerial-8   1   123456789 ns/op".
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

func main() {
	out := flag.String("out", "", "write a snapshot to this file")
	check := flag.String("check", "", "validate an existing snapshot file")
	bench := flag.String("bench", benchRegexp, "benchmark selection regexp")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	rev := flag.String("rev", "", "revision label (default: git rev-parse --short HEAD)")
	minSpeedup := flag.Float64("min-speedup", -1,
		"minimum RunAllSerial/RunAllParallel ns ratio accepted by -check; "+
			"-1 selects a core-count-aware default (1.0 with >1 CPU, 0.85 single-core, "+
			"where parallel can only add dispatch overhead)")
	flag.Parse()

	var err error
	switch {
	case *check != "":
		err = checkFile(*check, *minSpeedup)
	case *out != "":
		err = write(*out, *bench, *benchtime, *rev)
	default:
		err = fmt.Errorf("need -out or -check")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func write(path, bench, benchtime, rev string) error {
	if rev == "" {
		raw, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		if err != nil {
			return fmt.Errorf("git rev-parse: %w", err)
		}
		rev = strings.TrimSpace(string(raw))
	}
	// The sweep and inner-loop benchmarks all live in the root package;
	// -run ^$ skips tests so only benchmarks execute.
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	benches := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("parse %q: %w", line, err)
		}
		benches[m[1]] = ns
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}
	snap := snapshot{
		Schema:     schemaVersion,
		Rev:        rev,
		Go:         runtime.Version(),
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchtime:  benchtime,
		Maxprocs:   runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks at rev %s)\n", path, len(benches), rev)
	return nil
}

func checkFile(path string, minSpeedup float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != schemaVersion {
		return fmt.Errorf("%s: schema %d, want %d", path, snap.Schema, schemaVersion)
	}
	if snap.Rev == "" {
		return fmt.Errorf("%s: missing rev", path)
	}
	for name, ns := range snap.Benchmarks {
		if ns <= 0 {
			return fmt.Errorf("%s: %s has non-positive ns/op %v", path, name, ns)
		}
	}
	for _, name := range required {
		if _, ok := snap.Benchmarks[name]; !ok {
			return fmt.Errorf("%s: missing required benchmark %s", path, name)
		}
	}
	speedup := snap.Benchmarks["BenchmarkRunAllSerial"] / snap.Benchmarks["BenchmarkRunAllParallel"]
	switch {
	case minSpeedup < 0 && snap.Maxprocs == 0:
		// Pre-maxprocs snapshot: the core count it ran on is unknown, so
		// there is no defensible default threshold. Explicit -min-speedup
		// still applies.
		fmt.Printf("benchjson: %s: parallel/serial speedup %.3f (no maxprocs recorded, gate skipped)\n",
			path, speedup)
	default:
		min := minSpeedup
		if min < 0 {
			if snap.Maxprocs > 1 {
				min = 1.0
			} else {
				min = 0.85 // single core: tolerate dispatch overhead only
			}
		}
		if speedup < min {
			return fmt.Errorf("%s: RunAllParallel speedup %.3f below minimum %.2f (maxprocs %d)",
				path, speedup, min, snap.Maxprocs)
		}
		fmt.Printf("benchjson: %s: parallel/serial speedup %.3f (min %.2f at maxprocs %d)\n",
			path, speedup, min, snap.Maxprocs)
	}
	fmt.Printf("benchjson: %s ok (%d benchmarks at rev %s)\n", path, len(snap.Benchmarks), snap.Rev)
	return nil
}
