// Command eventcheck validates a cdlab JSONL event stream on stdin
// against the service's versioned event schema (CI's event-schema gate):
//
//	cdlab run fig6 -json | go run ./scripts/eventcheck
//	cdlab run fig6 -remote 127.0.0.1:8080 -json | go run ./scripts/eventcheck
//
// The same envelope flows through every channel — `cdlab run -json`
// locally, and the /v1 HTTP event streams a remote run relays — so one
// checker gates both. Per-event validation enforces the /v1 envelope
// ("v":1, service.EventSchemaVersion) and the type-specific fields,
// including the enrichment rules: a computed shard_done carries a
// positive elapsed_ms, a cached one carries neither wall time nor worker
// attribution, and terminal events measure the job's wall time.
// Stream-level checks cover every job present in the input: the first
// event is job_queued, seq numbers are gap-free from 0 (also across the
// client's ?from=N reconnect resumes), shard_done progress is monotonic,
// no shard's compute time exceeds the wall time its job reports, and the
// stream ends with exactly one terminal event per job. With
// -require-worker every computed shard must also name the worker that
// executed it — the gate for -no-local-shards runs, where in-process
// execution would be a scheduler bug. Exits non-zero with a line number
// on the first violation.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"columndisturb/internal/service"
)

// jobTrack accumulates one job's stream-level state.
type jobTrack struct {
	nextSeq   int
	shardDone int
	// maxShardMs is the largest per-shard compute time seen; a shard
	// computes strictly inside its job's lifetime, so the terminal event's
	// elapsed_ms must be at least this.
	maxShardMs float64
	terminal   bool
	finished   bool
}

func main() {
	requireWorker := flag.Bool("require-worker", false,
		"fail if any computed shard_done lacks a worker attribution (for -no-local-shards runs)")
	flag.Parse()
	if err := check(os.Stdin, *requireWorker); err != nil {
		fmt.Fprintln(os.Stderr, "eventcheck:", err)
		os.Exit(1)
	}
}

func check(in *os.File, requireWorker bool) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	jobs := map[string]*jobTrack{}
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			return fmt.Errorf("line %d: empty line in JSONL stream", line)
		}
		ev, err := service.DecodeEvent(sc.Bytes())
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		j := jobs[ev.Job]
		if j == nil {
			j = &jobTrack{}
			jobs[ev.Job] = j
			if ev.Type != service.EventJobQueued {
				return fmt.Errorf("line %d: job %s opens with %s, want job_queued", line, ev.Job, ev.Type)
			}
		}
		if j.terminal {
			return fmt.Errorf("line %d: job %s emits %s after its terminal event", line, ev.Job, ev.Type)
		}
		if ev.Seq != j.nextSeq {
			return fmt.Errorf("line %d: job %s seq %d, want %d (gap or reorder)", line, ev.Job, ev.Seq, j.nextSeq)
		}
		j.nextSeq++
		switch ev.Type {
		case service.EventShardDone:
			j.shardDone++
			if ev.Done != j.shardDone {
				return fmt.Errorf("line %d: job %s shard_done #%d reports done=%d", line, ev.Job, j.shardDone, ev.Done)
			}
			if ev.Total < j.shardDone {
				return fmt.Errorf("line %d: job %s done %d exceeds total %d", line, ev.Job, j.shardDone, ev.Total)
			}
			if requireWorker && ev.Cached != nil && !*ev.Cached && ev.Worker == "" {
				return fmt.Errorf("line %d: job %s shard %s computed without a worker attribution", line, ev.Job, ev.Shard)
			}
			if ev.ElapsedMs > j.maxShardMs {
				j.maxShardMs = ev.ElapsedMs
			}
		case service.EventJobFinished, service.EventJobFailed:
			if ev.ElapsedMs < j.maxShardMs {
				return fmt.Errorf("line %d: job %s reports %gms total but one shard alone took %gms",
					line, ev.Job, ev.ElapsedMs, j.maxShardMs)
			}
			j.terminal = true
			j.finished = ev.Type == service.EventJobFinished
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty input: no events to check")
	}
	for id, j := range jobs {
		if !j.terminal {
			return fmt.Errorf("job %s has no terminal event", id)
		}
		if !j.finished {
			return fmt.Errorf("job %s failed (stream is schema-valid but the run was not clean)", id)
		}
	}
	fmt.Printf("eventcheck: OK (%d events, %d jobs)\n", line, len(jobs))
	return nil
}
