// Command eventcheck validates a cdlab JSONL event stream on stdin
// against the service's versioned event schema (CI's event-schema gate):
//
//	cdlab run fig6 -json | go run ./scripts/eventcheck
//	cdlab run fig6 -remote 127.0.0.1:8080 -json | go run ./scripts/eventcheck
//
// The same envelope flows through every channel — `cdlab run -json`
// locally, and the /v1 HTTP event streams a remote run relays — so one
// checker gates both. Per-event validation enforces the /v1 envelope
// ("v":1, service.EventSchemaVersion) and the type-specific fields;
// stream-level checks cover every job present in the input: the first
// event is job_queued, seq numbers are gap-free from 0 (also across the
// client's ?from=N reconnect resumes), shard_done progress is monotonic,
// and the stream ends with exactly one terminal event per job. Exits
// non-zero with a line number on the first violation.
package main

import (
	"bufio"
	"fmt"
	"os"

	"columndisturb/internal/service"
)

// jobTrack accumulates one job's stream-level state.
type jobTrack struct {
	nextSeq   int
	shardDone int
	terminal  bool
	finished  bool
}

func main() {
	if err := check(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "eventcheck:", err)
		os.Exit(1)
	}
}

func check(in *os.File) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	jobs := map[string]*jobTrack{}
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			return fmt.Errorf("line %d: empty line in JSONL stream", line)
		}
		ev, err := service.DecodeEvent(sc.Bytes())
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		j := jobs[ev.Job]
		if j == nil {
			j = &jobTrack{}
			jobs[ev.Job] = j
			if ev.Type != service.EventJobQueued {
				return fmt.Errorf("line %d: job %s opens with %s, want job_queued", line, ev.Job, ev.Type)
			}
		}
		if j.terminal {
			return fmt.Errorf("line %d: job %s emits %s after its terminal event", line, ev.Job, ev.Type)
		}
		if ev.Seq != j.nextSeq {
			return fmt.Errorf("line %d: job %s seq %d, want %d (gap or reorder)", line, ev.Job, ev.Seq, j.nextSeq)
		}
		j.nextSeq++
		switch ev.Type {
		case service.EventShardDone:
			j.shardDone++
			if ev.Done != j.shardDone {
				return fmt.Errorf("line %d: job %s shard_done #%d reports done=%d", line, ev.Job, j.shardDone, ev.Done)
			}
			if ev.Total < j.shardDone {
				return fmt.Errorf("line %d: job %s done %d exceeds total %d", line, ev.Job, j.shardDone, ev.Total)
			}
		case service.EventJobFinished:
			j.terminal, j.finished = true, true
		case service.EventJobFailed:
			j.terminal = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty input: no events to check")
	}
	for id, j := range jobs {
		if !j.terminal {
			return fmt.Errorf("job %s has no terminal event", id)
		}
		if !j.finished {
			return fmt.Errorf("job %s failed (stream is schema-valid but the run was not clean)", id)
		}
	}
	fmt.Printf("eventcheck: OK (%d events, %d jobs)\n", line, len(jobs))
	return nil
}
